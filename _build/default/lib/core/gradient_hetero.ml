module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Graph = Gcs_graph.Graph
module Prng = Gcs_util.Prng

let fast_trigger_hetero ~kappas ~offsets =
  let n = Array.length offsets in
  if n = 0 then false
  else begin
    assert (Array.length kappas = n);
    (* Largest level at which some neighbor can still be "ahead enough". *)
    let max_level = ref 0 in
    for i = 0 to n - 1 do
      let ahead = -.offsets.(i) in
      if ahead >= kappas.(i) then begin
        let s = int_of_float ((ahead /. kappas.(i)) -. 1.) / 2 in
        if s > !max_level then max_level := s
      end
    done;
    let exists_ahead s =
      let ok = ref false in
      for i = 0 to n - 1 do
        if -.offsets.(i) >= (float_of_int ((2 * s) + 1) *. kappas.(i)) then
          ok := true
      done;
      !ok
    in
    let none_behind s =
      let ok = ref true in
      for i = 0 to n - 1 do
        if offsets.(i) > float_of_int ((2 * s) + 1) *. kappas.(i) then
          ok := false
      done;
      !ok
    in
    let rec search s =
      if s > !max_level then false
      else (exists_ahead s && none_behind s) || search (s + 1)
    in
    (* A neighbor must be ahead by at least its own kappa for level 0 to be
       worth checking at all. *)
    Array.exists2 (fun k o -> -.o >= k) kappas offsets && search 0
  end

let make_node ~edge_bounds (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let spec = ctx.spec in
  let period = spec.Spec.beacon_period in
  let fast_mult = 1. +. spec.Spec.mu in
  let ports = Graph.degree ctx.graph v in
  let port_bounds =
    Array.init ports (fun p -> edge_bounds (Graph.edge_at_port ctx.graph v p))
  in
  let port_kappa =
    Array.map
      (fun b ->
        let u = Delay_model.uncertainty b in
        let k =
          Spec.default_kappa ~u ~rho:spec.Spec.rho
            ~beacon_period:spec.Spec.beacon_period
        in
        if k > 0. then k else 1e-6)
      port_bounds
  in
  let port_guess =
    Array.map
      (fun b -> 0.5 *. (b.Delay_model.d_min +. b.Delay_model.d_max))
      port_bounds
  in
  let estimators = Array.init ports (fun _ -> Offset_estimator.create ()) in
  let evaluate (api : Message.t Engine.api) =
    let h = api.hardware () in
    let own = Logical_clock.value lc ~now:(ctx.now ()) in
    let known_offsets = ref [] and known_kappas = ref [] in
    Array.iteri
      (fun p est ->
        match Offset_estimator.offset ~max_age:spec.Spec.staleness_limit est
                ~h_local:h ~own_value:own with
        | Some o ->
            known_offsets := o :: !known_offsets;
            known_kappas := port_kappa.(p) :: !known_kappas
        | None -> ())
      estimators;
    let offsets = Array.of_list !known_offsets in
    let kappas = Array.of_list !known_kappas in
    let target =
      if fast_trigger_hetero ~kappas ~offsets then fast_mult else 1.
    in
    if Logical_clock.mult lc <> target then
      Logical_clock.set_mult lc ~now:(ctx.now ()) target
  in
  let broadcast (api : Message.t Engine.api) =
    let value = Logical_clock.value lc ~now:(ctx.now ()) in
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Beacon { value })
    done
  in
  let arm (api : Message.t Engine.api) ~tag delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag
  in
  {
    Engine.on_init =
      (fun api ->
        arm api ~tag:Algorithm.timer_beacon (Prng.uniform api.rng ~lo:0. ~hi:period);
        arm api ~tag:Algorithm.timer_recheck
          (Prng.uniform api.rng ~lo:0. ~hi:(period /. 2.)));
    on_message =
      (fun api ~port msg ->
        match msg with
        | Message.Beacon { value } ->
            Offset_estimator.update estimators.(port)
              ~h_local:(api.hardware ()) ~remote_value:value
              ~elapsed_guess:port_guess.(port);
            evaluate api
        | Message.Probe _ | Message.Probe_reply _ | Message.Flood _
        | Message.Report _ | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          broadcast api;
          arm api ~tag:Algorithm.timer_beacon period
        end
        else if tag = Algorithm.timer_recheck then begin
          evaluate api;
          arm api ~tag:Algorithm.timer_recheck (period /. 2.)
        end);
  }

let algorithm ~edge_bounds =
  {
    Algorithm.name = "gradient-hetero";
    prepare = (fun ctx v -> make_node ~edge_bounds ctx v);
  }
