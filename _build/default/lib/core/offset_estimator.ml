type anchor = { h_anchor : float; remote_at_anchor : float }

type t = { mutable anchor : anchor option }

let create () = { anchor = None }

let update t ~h_local ~remote_value ~elapsed_guess =
  t.anchor <-
    Some { h_anchor = h_local; remote_at_anchor = remote_value +. elapsed_guess }

let remote_estimate ?max_age t ~h_local =
  match t.anchor with
  | None -> None
  | Some { h_anchor; remote_at_anchor } -> (
      match max_age with
      | Some limit when h_local -. h_anchor > limit -> None
      | Some _ | None -> Some (remote_at_anchor +. (h_local -. h_anchor)))

let offset ?max_age t ~h_local ~own_value =
  match remote_estimate ?max_age t ~h_local with
  | None -> None
  | Some remote -> Some (own_value -. remote)

let last_beacon t =
  match t.anchor with None -> None | Some { h_anchor; _ } -> Some h_anchor
