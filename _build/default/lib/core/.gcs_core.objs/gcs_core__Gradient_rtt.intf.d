lib/core/gradient_rtt.mli: Algorithm
