lib/core/algorithm.ml: Gcs_clock Gcs_graph Gcs_sim Message Printf Spec
