lib/core/spec.ml: Gcs_sim Printf
