lib/core/external_sync.mli: Algorithm
