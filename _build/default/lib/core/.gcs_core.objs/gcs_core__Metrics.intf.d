lib/core/metrics.mli: Gcs_graph
