lib/core/free_run.mli: Algorithm
