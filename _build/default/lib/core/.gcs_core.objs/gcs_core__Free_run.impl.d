lib/core/free_run.ml: Algorithm Gcs_sim
