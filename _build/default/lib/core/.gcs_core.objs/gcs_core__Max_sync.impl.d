lib/core/max_sync.ml: Algorithm Array Gcs_clock Gcs_sim Gcs_util Message
