lib/core/registry.ml: Algorithm Free_run Gradient_sync List Max_slew Max_sync Tree_sync
