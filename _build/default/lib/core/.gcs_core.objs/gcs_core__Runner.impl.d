lib/core/runner.ml: Algorithm Array Float Gcs_clock Gcs_graph Gcs_sim Gcs_util List Message Metrics Registry Spec
