lib/core/offset_estimator.ml:
