lib/core/tree_sync.mli: Algorithm
