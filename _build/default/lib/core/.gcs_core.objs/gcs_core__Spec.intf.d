lib/core/spec.mli: Gcs_sim
