lib/core/gradient_rtt.ml: Algorithm Array Gcs_clock Gcs_sim Gcs_util Gradient_sync Message Offset_estimator Spec
