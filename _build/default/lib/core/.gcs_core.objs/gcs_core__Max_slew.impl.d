lib/core/max_slew.ml: Algorithm Array Gcs_clock Gcs_sim Gcs_util Message Offset_estimator Spec
