lib/core/gradient_hetero.ml: Algorithm Array Gcs_clock Gcs_graph Gcs_sim Gcs_util Message Offset_estimator Spec
