lib/core/gradient_sync.ml: Algorithm Array Float Gcs_clock Gcs_sim Gcs_util Message Offset_estimator Spec
