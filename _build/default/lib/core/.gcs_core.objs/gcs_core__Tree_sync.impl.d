lib/core/tree_sync.ml: Algorithm Array Float Gcs_clock Gcs_graph Gcs_sim Gcs_util Message Spec
