lib/core/max_slew.mli: Algorithm
