lib/core/metrics.ml: Array Float Gcs_graph Gcs_util List
