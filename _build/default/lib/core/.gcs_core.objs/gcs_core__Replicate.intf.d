lib/core/replicate.mli:
