lib/core/max_sync.mli: Algorithm
