lib/core/gradient_sync.mli: Algorithm
