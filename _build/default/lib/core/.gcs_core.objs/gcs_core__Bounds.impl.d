lib/core/bounds.ml: Float Gcs_sim Spec
