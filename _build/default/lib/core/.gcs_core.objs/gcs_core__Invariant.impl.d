lib/core/invariant.ml: Algorithm Array Bounds Float Gcs_graph List Metrics Printf Runner Spec
