lib/core/runner.mli: Algorithm Gcs_clock Gcs_graph Gcs_sim Message Metrics Spec
