lib/core/stabilize.ml: Algorithm Array Bounds Float Gcs_clock Gcs_graph Gcs_sim Message Spec
