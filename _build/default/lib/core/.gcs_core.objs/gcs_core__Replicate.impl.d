lib/core/replicate.ml: Array Gcs_util List Printf
