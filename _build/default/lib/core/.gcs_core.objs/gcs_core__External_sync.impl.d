lib/core/external_sync.ml: Algorithm Array Float Gcs_clock Gcs_sim Gcs_util Gradient_sync Message Offset_estimator Spec
