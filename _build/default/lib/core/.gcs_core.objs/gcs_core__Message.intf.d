lib/core/message.mli:
