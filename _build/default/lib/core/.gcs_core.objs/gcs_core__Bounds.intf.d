lib/core/bounds.mli: Spec
