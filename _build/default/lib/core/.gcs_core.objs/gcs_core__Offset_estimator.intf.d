lib/core/offset_estimator.mli:
