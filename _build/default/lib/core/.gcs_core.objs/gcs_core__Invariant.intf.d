lib/core/invariant.mli: Algorithm Gcs_graph Metrics Runner Spec
