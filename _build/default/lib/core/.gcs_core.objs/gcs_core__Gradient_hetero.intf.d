lib/core/gradient_hetero.mli: Algorithm Gcs_sim
