lib/core/algorithm.mli: Gcs_clock Gcs_graph Gcs_sim Message Spec
