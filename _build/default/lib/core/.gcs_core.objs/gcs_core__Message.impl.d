lib/core/message.ml: Printf
