lib/core/stabilize.mli: Algorithm Spec
