(** Max-based synchronization (Srikanth-Toueg style).

    Nodes periodically broadcast their logical clock; a receiver jumps
    forward to [received + d_min] whenever that exceeds its own value
    (a safe lower bound on the sender's current clock, since logical rates
    are at least 1 and the message was in flight at least [d_min]).

    This is the classic *global*-skew algorithm: the fastest clock drags
    everyone along, giving global skew O(D * (u + rho * P)). Its local skew
    is as bad as its global skew — a fresh maximum propagates as a
    wavefront, creating a cliff between updated and non-updated neighbors —
    which is precisely the behaviour the GCS problem statement indicts. *)

val algorithm : Algorithm.t
