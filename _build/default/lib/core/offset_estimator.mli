(** Per-neighbor clock offset estimation from one-way beacons.

    When node [v] receives a beacon from neighbor [w] carrying [L_w] as of
    the send instant, it assumes the message spent the midpoint of the delay
    band in flight and that [w]'s logical clock advanced at rate 1
    meanwhile. Between beacons, the estimate of [L_w] is extrapolated at
    [v]'s own hardware rate. The resulting estimate o_{v,w} of
    [L_v - L_w] carries error at most [u / 2] (delay asymmetry) plus drift
    accumulated since the last beacon — exactly the estimate error the
    model reasons about; its bound is {!Spec.estimate_error_bound}. *)

type t

val create : unit -> t

val update : t -> h_local:float -> remote_value:float -> elapsed_guess:float -> unit
(** Record a beacon: at local hardware time [h_local] the remote clock was
    estimated at [remote_value + elapsed_guess] (the caller supplies the
    assumed in-flight progress, typically the delay-band midpoint). *)

val remote_estimate : ?max_age:float -> t -> h_local:float -> float option
(** Estimated current remote logical clock at local hardware time
    [h_local]; [None] before the first beacon, or when the last beacon is
    older than [max_age] (staleness expiry: extrapolation error grows with
    age, and a silent neighbor — crashed node, dead link — must
    eventually stop influencing the trigger). *)

val offset : ?max_age:float -> t -> h_local:float -> own_value:float -> float option
(** Estimated [own - remote] offset (the o_{v,w} of the model), with the
    same expiry semantics. *)

val last_beacon : t -> float option
(** Local hardware time of the most recent beacon. *)
