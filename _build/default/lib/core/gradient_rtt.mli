(** The gradient algorithm over two-way (round-trip) offset estimation.

    The base [Gradient_sync] estimates neighbor clocks from one-way beacons
    by *assuming* the in-flight time equals the delay band's midpoint. That
    assumption is exactly what the directional-bias adversary exploits, and
    it also breaks when an edge's typical delay simply is not the midpoint
    (asymmetric routes, unequal turnaround) — a calibration error the node
    cannot see.

    This variant estimates offsets the NTP way instead: probe, echo, and
    take the midpoint of the measured round trip. The estimate needs no
    knowledge of the delay distribution at all — only that the two
    directions of one exchange are similar. Under symmetric delays of
    *unknown* mean it is unbiased where one-way estimation carries a
    per-edge constant error; under deliberately asymmetric delays both
    estimators are fooled equally (that asymmetry is the provably
    unremovable u/2).

    Experiment E15 measures the difference on edges with randomly skewed
    mean delays. Costs: two messages per neighbor per period instead of
    one shared broadcast, and error grows with the round trip rather than
    the one-way delay. *)

val algorithm : Algorithm.t
