module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng

let make_node (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let spec = ctx.spec in
  let period = spec.Spec.beacon_period in
  let threshold = Spec.estimate_error_bound spec in
  let fast_mult = 1. +. spec.Spec.mu in
  let bounds = spec.Spec.delay in
  let flight_guess =
    0.5 *. (bounds.Delay_model.d_min +. bounds.Delay_model.d_max)
  in
  let estimators = ref [||] in
  let evaluate (api : Message.t Engine.api) =
    let h = api.hardware () in
    let own = Logical_clock.value lc ~now:(ctx.now ()) in
    let behind = ref false in
    Array.iter
      (fun est ->
        match Offset_estimator.offset ~max_age:spec.Spec.staleness_limit est
                ~h_local:h ~own_value:own with
        | Some o when -.o > threshold -> behind := true
        | Some _ | None -> ())
      !estimators;
    let target = if !behind then fast_mult else 1. in
    if Logical_clock.mult lc <> target then
      Logical_clock.set_mult lc ~now:(ctx.now ()) target
  in
  let broadcast (api : Message.t Engine.api) =
    let value = Logical_clock.value lc ~now:(ctx.now ()) in
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Beacon { value })
    done
  in
  let arm (api : Message.t Engine.api) ~tag delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag
  in
  {
    Engine.on_init =
      (fun api ->
        estimators := Array.init api.ports (fun _ -> Offset_estimator.create ());
        arm api ~tag:Algorithm.timer_beacon (Prng.uniform api.rng ~lo:0. ~hi:period);
        arm api ~tag:Algorithm.timer_recheck
          (Prng.uniform api.rng ~lo:0. ~hi:(period /. 2.)));
    on_message =
      (fun api ~port msg ->
        match msg with
        | Message.Beacon { value } ->
            Offset_estimator.update !estimators.(port)
              ~h_local:(api.hardware ()) ~remote_value:value
              ~elapsed_guess:flight_guess;
            evaluate api
        | Message.Probe _ | Message.Probe_reply _ | Message.Flood _
        | Message.Report _ | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          broadcast api;
          arm api ~tag:Algorithm.timer_beacon period
        end
        else if tag = Algorithm.timer_recheck then begin
          evaluate api;
          arm api ~tag:Algorithm.timer_recheck (period /. 2.)
        end);
  }

let algorithm = { Algorithm.name = "max-slew"; prepare = make_node }
