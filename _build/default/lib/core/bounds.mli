(** Analytic skew bounds, for printing next to measurements.

    [fan_lynch_lower] is the PODC 2004 main theorem made concrete (up to its
    constant); the others are the standard upper bounds for the implemented
    algorithms, used as generous correctness envelopes in tests and as
    reference lines in experiment output. *)

val fan_lynch_lower : u:float -> diameter:int -> float
(** c * u * log D / log log D with c = 1/4 (the commonly quoted constant);
    0 for D < 2. The log log is floored at 1 so small diameters are
    well-defined. *)

val gradient_local_upper : Spec.t -> diameter:int -> float
(** Local skew envelope of [Gradient_sync]:
    kappa * (2 * ceil(log_sigma D) + 6) with sigma = mu / rho (one level per
    sigma-factor of diameter, doubled for the trigger quantization, plus
    slack for estimate staleness). *)

val gradient_global_upper : Spec.t -> diameter:int -> float
(** Global skew envelope of [Gradient_sync]: (kappa + u) * D + slack. *)

val max_sync_global_upper : Spec.t -> diameter:int -> float
(** Global skew envelope of [Max_sync]:
    D * u + rho * (beacon_period + d_max) * (D + 1) + slack — a fresh
    maximum reaches everyone within D hops, losing u per hop, and drift
    accrues for at most a beacon period per hop. *)

val free_run_global : Spec.t -> horizon:float -> float
(** Exact worst-case drift accumulation without synchronization:
    rho * horizon. *)
