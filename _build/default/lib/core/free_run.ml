let algorithm =
  {
    Algorithm.name = "free-run";
    prepare =
      (fun _ctx _v ->
        {
          Gcs_sim.Engine.on_init = (fun _api -> ());
          on_message = (fun _api ~port:_ _msg -> ());
          on_timer = (fun _api ~tag:_ -> ());
        });
  }
