(** The wire format shared by all synchronization algorithms.

    A single message type keeps the engine monomorphic per run while letting
    every algorithm (and the self-stabilization layer) speak; algorithms
    simply ignore variants they never send. *)

type t =
  | Beacon of { value : float }
      (** One-way broadcast of the sender's logical clock at send time.
          Used by [Max_sync] and [Gradient_sync]. *)
  | Probe of { seq : int; h_send : float }
      (** Two-way exchange request carrying the sender's hardware clock at
          send time (echoed back verbatim). Used by [Tree_sync]. *)
  | Probe_reply of { seq : int; h_send : float; remote_value : float }
      (** Reply to a [Probe]: echoes [seq] and [h_send] and reports the
          responder's logical clock at reply time. *)
  | Flood of { round : int; payload : float }
      (** Monitor round flowing down the spanning tree; [payload] is the
          sender's estimate of the root's current logical clock. *)
  | Report of { round : int; lo : float; hi : float }
      (** Convergecast reply flowing up the tree: extremes of the offsets
          to the root observed in the sender's subtree. *)
  | Reset of { round : int; payload : float }
      (** Self-stabilizing reset order flowing down the tree; receivers
          jump their logical clock to the accumulated root estimate. *)

val to_string : t -> string
