(** The gradient algorithm for heterogeneous (non-uniform) networks.

    Real networks do not have one delay-uncertainty: a backplane link and a
    radio link in the same system differ by orders of magnitude. The
    non-uniform extension of gradient clock synchronization (Kuhn-Oshman)
    replaces the global skew quantum kappa with a per-edge quantum
    kappa_e derived from that edge's own delay bounds, and evaluates the
    fast condition with each neighbor measured against its own edge:

    run fast iff there is a level s >= 0 with
    - some neighbor w ahead by at least (2s + 1) * kappa_{vw}, and
    - no neighbor w' behind by more than (2s + 1) * kappa_{vw'}.

    The payoff: local skew across a *good* edge scales with that edge's
    kappa_e, not with the worst edge in the system — the uniform algorithm
    would tax every edge at the global worst case. Experiment E12 measures
    exactly this.

    Pair it with [Runner.Per_edge_delays] so the simulated delays actually
    follow the per-edge bounds. *)

val fast_trigger_hetero : kappas:float array -> offsets:float array -> bool
(** Pure per-edge trigger evaluation ([offsets.(i)] is o_{v,w_i} measured
    across an edge with quantum [kappas.(i)]); exposed for tests. Arrays
    must have equal length; empty arrays never trigger. *)

val algorithm : edge_bounds:(int -> Gcs_sim.Delay_model.bounds) -> Algorithm.t
(** The heterogeneous gradient algorithm. [edge_bounds] maps each edge id
    to its delay bounds; each edge's kappa is derived from them with
    {!Spec.default_kappa} (using the spec's rho and beacon period). Run it
    through [Runner.config ~override] together with
    [~delay_kind:(Per_edge_delays edge_bounds)]. *)
