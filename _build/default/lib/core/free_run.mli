(** The no-synchronization baseline: every logical clock simply follows its
    hardware clock (multiplier 1, no messages). Its skew is the raw drift
    accumulation [rho * t], the floor any algorithm must beat; it also
    exercises the metric plumbing in tests. *)

val algorithm : Algorithm.t
