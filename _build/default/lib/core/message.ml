type t =
  | Beacon of { value : float }
  | Probe of { seq : int; h_send : float }
  | Probe_reply of { seq : int; h_send : float; remote_value : float }
  | Flood of { round : int; payload : float }
  | Report of { round : int; lo : float; hi : float }
  | Reset of { round : int; payload : float }

let to_string = function
  | Beacon { value } -> Printf.sprintf "Beacon(%g)" value
  | Probe { seq; h_send } -> Printf.sprintf "Probe(#%d@%g)" seq h_send
  | Probe_reply { seq; h_send; remote_value } ->
      Printf.sprintf "ProbeReply(#%d@%g->%g)" seq h_send remote_value
  | Flood { round; payload } -> Printf.sprintf "Flood(r%d:%g)" round payload
  | Report { round; lo; hi } -> Printf.sprintf "Report(r%d:[%g,%g])" round lo hi
  | Reset { round; payload } -> Printf.sprintf "Reset(r%d:%g)" round payload
