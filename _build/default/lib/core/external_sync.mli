(** External synchronization: anchoring the network to a time reference.

    Some applications need logical clocks that track *real* time (UTC), not
    just each other. The standard device in the GCS literature is a virtual
    reference node: every node with access to an external reference (a GPS
    receiver, say) behaves as if it had one extra neighbor whose logical
    clock is the true time, with the reference's error playing the role of
    that edge's offset-estimation error.

    This module implements the gradient algorithm extended with such
    virtual edges, using the standard zeta-slowdown construction: every
    node's *default* multiplier is [1 - mu/2] (deliberately below real
    time), and the fast trigger lifts it to [1 + mu]. The virtual
    reference, whose clock advances at exactly rate 1, is therefore never
    the slowest participant: anchored nodes that fall behind it race via
    the ordinary fast trigger, their neighbors race after them, and the
    whole network tracks true time. Conversely a node ahead of the
    reference has a "neighbor behind", which blocks its fast trigger and
    lets the reference catch up. Without the slowdown a single anchor is
    provably powerless — the network would drift ahead at the pace of its
    fastest hardware clock and the model forbids ever running slower.

    The real-time skew T(t) = max_v |L_v(t) - t| is then bounded for the
    whole network: anchored nodes track the reference, everyone else tracks
    them through the usual gradient machinery. Without anchors T(t) is
    unbounded — the model gives internal algorithms no access to true
    time. *)

type reference
(** An external time source as seen by one node: can be queried for an
    estimate of true time whose (unknown) error varies slowly. *)

val perfect_reference : reference
(** Always returns the exact true time. *)

val noisy_reference :
  bias:float -> wander:float -> period:float -> phase:float -> reference
(** Estimate error [bias + wander * sin(2 pi (t / period) + phase)]: a
    constant offset plus bounded, slowly varying wander — the standard
    shape for a disciplined receiver. *)

val query : reference -> now:float -> float
(** The reference's estimate of true time at real time [now]. *)

val algorithm : anchors:(int -> reference option) -> Algorithm.t
(** The gradient algorithm with virtual reference edges at every node for
    which [anchors] returns a reference. Run it through
    [Runner.config ~override]. *)
