module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Graph = Gcs_graph.Graph
module Spanning_tree = Gcs_graph.Spanning_tree
module Prng = Gcs_util.Prng

let prepare (ctx : Algorithm.ctx) =
  let tree = Spanning_tree.bfs_tree ctx.graph ~root:0 in
  let threshold = Spec.estimate_error_bound ctx.spec in
  let period = ctx.spec.beacon_period in
  let fast = 1. +. ctx.spec.mu in
  (* Deployed tree protocols (NTP/PTP) slew in both directions; a node ahead
     of its parent deliberately runs slower than its hardware clock. This
     steps outside the GCS model's "at least hardware rate" envelope (its
     alpha is 1 - mu/2 instead of 1), which is exactly how practice differs
     from the model — worth keeping faithful, since this baseline stands in
     for practice. *)
  let slow = Float.max 0.5 (1. -. (ctx.spec.mu /. 2.)) in
  fun v ->
    let lc = ctx.logical.(v) in
    let parent_port =
      if v = tree.Spanning_tree.root then None
      else Some (Graph.port_of_neighbor ctx.graph v tree.Spanning_tree.parent.(v))
    in
    let seq = ref 0 in
    let last_accepted = ref 0 in
    let arm (api : Message.t Engine.api) delay =
      api.set_timer ~h:(api.hardware () +. delay) ~tag:Algorithm.timer_beacon
    in
    let probe_parent (api : Message.t Engine.api) =
      match parent_port with
      | None -> ()
      | Some port ->
          incr seq;
          api.send ~port (Message.Probe { seq = !seq; h_send = api.hardware () })
    in
    let steer (api : Message.t Engine.api) err =
      (* [err] estimates own - parent; positive means we are ahead. *)
      ignore api;
      let now = ctx.now () in
      let target =
        if err < -.threshold then fast
        else if err > threshold then slow
        else 1.
      in
      if Logical_clock.mult lc <> target then
        Logical_clock.set_mult lc ~now target
    in
    {
      Engine.on_init =
        (fun api -> arm api (Prng.uniform api.rng ~lo:0. ~hi:period));
      on_message =
        (fun api ~port msg ->
          match msg with
          | Message.Probe { seq; h_send } ->
              let value = Logical_clock.value lc ~now:(ctx.now ()) in
              api.send ~port
                (Message.Probe_reply { seq; h_send; remote_value = value })
          | Message.Probe_reply { seq = reply_seq; h_send; remote_value } ->
              (* Replies may trail the next probe (rtt can exceed the probe
                 period); accept any reply fresher than the last one used,
                 which also discards reordered stragglers. *)
              if Some port = parent_port && reply_seq > !last_accepted then begin
                last_accepted := reply_seq;
                let h_now = api.hardware () in
                let rtt = h_now -. h_send in
                let parent_estimate = remote_value +. (rtt /. 2.) in
                let own = Logical_clock.value lc ~now:(ctx.now ()) in
                steer api (own -. parent_estimate)
              end
          | Message.Beacon _ | Message.Flood _ | Message.Report _
          | Message.Reset _ ->
              ());
      on_timer =
        (fun api ~tag ->
          if tag = Algorithm.timer_beacon then begin
            probe_parent api;
            arm api period
          end);
    }

let algorithm = { Algorithm.name = "tree"; prepare }
