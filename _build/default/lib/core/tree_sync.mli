(** Tree-based synchronization (the NTP/PTP shape).

    A BFS tree rooted at node 0 is fixed at deployment time. Every non-root
    node periodically runs a two-way probe exchange with its parent (the
    NTP midpoint estimator: offset error at most [u / 2] per exchange plus
    drift over the round trip) and steers its logical clock bang-bang with a
    deadband: run fast ([1 + mu]) when behind the parent estimate by more
    than the estimate-error bound, slow (rate 1) otherwise.

    Skew across *tree* edges stays small, but a non-tree edge closes a long
    tree path, so the local skew on such an edge is proportional to tree
    depth — e.g. Theta(D) on a ring. This is the deployed-practice baseline
    whose failure mode motivates gradient clock synchronization. *)

val algorithm : Algorithm.t
