let fan_lynch_lower ~u ~diameter =
  if diameter < 2 then 0.
  else begin
    let d = float_of_int diameter in
    let loglog = Float.max 1. (log (log d)) in
    u /. 4. *. (log d /. loglog)
  end

let log_base base x = log x /. log base

let gradient_local_upper (spec : Spec.t) ~diameter =
  let sigma = Spec.sigma spec in
  let d = float_of_int (max diameter 1) in
  let levels =
    if Float.is_finite sigma && sigma > 1. then
      Float.ceil (Float.max 0. (log_base sigma d))
    else 0.
  in
  spec.kappa *. ((2. *. levels) +. 6.)

let gradient_global_upper (spec : Spec.t) ~diameter =
  let u = Spec.uncertainty spec in
  ((spec.kappa +. u) *. float_of_int diameter) +. (2. *. spec.kappa)

let max_sync_global_upper (spec : Spec.t) ~diameter =
  let u = Spec.uncertainty spec in
  let d = float_of_int diameter in
  let per_hop_staleness =
    spec.rho *. (spec.beacon_period +. spec.delay.Gcs_sim.Delay_model.d_max)
  in
  (d *. u) +. (per_hop_staleness *. (d +. 1.)) +. spec.kappa

let free_run_global (spec : Spec.t) ~horizon = spec.rho *. horizon
