module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Prng = Gcs_util.Prng

let make_node (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let spec = ctx.spec in
  let period = spec.Spec.beacon_period in
  let kappa = spec.Spec.kappa in
  let fast_mult = 1. +. spec.Spec.mu in
  let estimators = ref [||] in
  let last_accepted = ref [||] in
  let seq = ref 0 in
  let offsets_now (api : Message.t Engine.api) =
    let h = api.hardware () in
    let own = Logical_clock.value lc ~now:(ctx.now ()) in
    let known = ref [] in
    Array.iter
      (fun est ->
        match Offset_estimator.offset ~max_age:spec.Spec.staleness_limit est
                ~h_local:h ~own_value:own with
        | Some o -> known := o :: !known
        | None -> ())
      !estimators;
    Array.of_list !known
  in
  let evaluate (api : Message.t Engine.api) =
    let offsets = offsets_now api in
    let target =
      if Gradient_sync.fast_trigger ~kappa ~offsets then fast_mult else 1.
    in
    if Logical_clock.mult lc <> target then
      Logical_clock.set_mult lc ~now:(ctx.now ()) target
  in
  let probe_all (api : Message.t Engine.api) =
    incr seq;
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Probe { seq = !seq; h_send = api.hardware () })
    done
  in
  let arm (api : Message.t Engine.api) ~tag delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag
  in
  {
    Engine.on_init =
      (fun api ->
        estimators := Array.init api.ports (fun _ -> Offset_estimator.create ());
        last_accepted := Array.make api.ports 0;
        arm api ~tag:Algorithm.timer_beacon (Prng.uniform api.rng ~lo:0. ~hi:period);
        arm api ~tag:Algorithm.timer_recheck
          (Prng.uniform api.rng ~lo:0. ~hi:(period /. 2.)));
    on_message =
      (fun api ~port msg ->
        match msg with
        | Message.Probe { seq; h_send } ->
            let value = Logical_clock.value lc ~now:(ctx.now ()) in
            api.send ~port
              (Message.Probe_reply { seq; h_send; remote_value = value })
        | Message.Probe_reply { seq = reply_seq; h_send; remote_value } ->
            if reply_seq > !last_accepted.(port) then begin
              !last_accepted.(port) <- reply_seq;
              let h_now = api.hardware () in
              let rtt = h_now -. h_send in
              (* The neighbor's clock read mid-exchange, brought forward by
                 half the round trip: no delay-distribution knowledge. *)
              Offset_estimator.update !estimators.(port) ~h_local:h_now
                ~remote_value ~elapsed_guess:(rtt /. 2.);
              evaluate api
            end
        | Message.Beacon _ | Message.Flood _ | Message.Report _
        | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          probe_all api;
          arm api ~tag:Algorithm.timer_beacon period
        end
        else if tag = Algorithm.timer_recheck then begin
          evaluate api;
          arm api ~tag:Algorithm.timer_recheck (period /. 2.)
        end);
  }

let algorithm = { Algorithm.name = "gradient-rtt"; prepare = make_node }
