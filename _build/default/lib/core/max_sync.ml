module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng

let make_node (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let period = ctx.spec.beacon_period in
  let d_min = ctx.spec.delay.Delay_model.d_min in
  let broadcast (api : Message.t Engine.api) =
    let value = Logical_clock.value lc ~now:(ctx.now ()) in
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Beacon { value })
    done
  in
  let arm (api : Message.t Engine.api) delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag:Algorithm.timer_beacon
  in
  {
    Engine.on_init =
      (fun api ->
        (* Jitter the first beacon so nodes do not fire in lockstep. *)
        arm api (Prng.uniform api.rng ~lo:0. ~hi:period));
    on_message =
      (fun _api ~port:_ msg ->
        match msg with
        | Message.Beacon { value } ->
            let now = ctx.now () in
            let candidate = value +. d_min in
            if candidate > Logical_clock.value lc ~now then
              Logical_clock.jump_to lc ~now candidate
        | Message.Probe _ | Message.Probe_reply _ | Message.Flood _
        | Message.Report _ | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          broadcast api;
          arm api period
        end);
  }

let algorithm = { Algorithm.name = "max"; prepare = make_node }
