(** Self-stabilization by detect-and-reset: a tree monitor wrapped around
    any synchronization algorithm.

    A gradient algorithm recovers on its own from *bounded* bad states, but
    only at its slew speed mu — a clock that is wrong by 10^6 would need
    10^6 / mu time. The standard remedy in the GCS literature is a
    detection mechanism for excessive global skew plus a coordinated reset.

    This wrapper runs, alongside the wrapped algorithm:

    - a *monitor*: every monitor period the root starts a round that floods
      down the BFS spanning tree, each hop extending the estimate of the
      root's current logical clock; a convergecast carries the min/max
      offset to the root back up, so the root learns the global skew up to
      an error of O(depth * (u / 2 + drift)) — the same order as the time
      the information needs to travel, which is the best possible;
    - a *reset*: when the estimate exceeds the threshold, the root floods a
      reset order; every node jumps its logical clock to its estimate of
      the root's. Stabilization time is O(tree depth * d_max) rather than
      O(initial skew / mu).

    Rounds are loss-tolerant: every node arms a report deadline scaled to
    its subtree height, so a lost report degrades the round to a partial
    (under-estimating) view instead of wedging it; detection then simply
    falls to a later round that reaches the faulty region.

    Resets are clock discontinuities, exactly like [Max_sync] jumps: the
    price of self-stabilization is a bounded number of rate violations
    while recovering from transient faults. The jump statistics on the
    runner result make that cost visible. *)

type stats = {
  mutable rounds_completed : int;  (** monitor rounds the root finished *)
  mutable resets : int;  (** reset orders issued *)
  mutable last_estimate : float;  (** most recent global-skew estimate *)
}

val wrap :
  ?monitor_period:float ->
  ?threshold:float ->
  inner:Algorithm.t ->
  unit ->
  Algorithm.t * stats
(** [wrap ~inner ()] layers the monitor over [inner]. The monitor owns the
    [Flood]/[Report]/[Reset] message variants and timer tags >= 100; the
    inner algorithm sees everything else untouched.

    [monitor_period] defaults to several tree traversals' worth of time;
    [threshold] defaults to twice the gradient algorithm's global-skew
    envelope for the instance (so it never fires during in-spec operation).
    The returned [stats] record accumulates over every run prepared from
    this wrapped algorithm. *)

val default_threshold : Spec.t -> diameter:int -> float
(** The detection threshold used when none is supplied. *)
