(** Rate-limited max synchronization: the jump-free fair baseline.

    [Max_sync] achieves its skew numbers with discrete forward jumps, which
    step outside the model's bounded-rate output requirement. This variant
    plays by the rules: it keeps beacon-based estimates of each neighbor's
    logical clock and runs at the fast multiplier [1 + mu] exactly while
    some neighbor is estimated to be ahead by more than the estimate-error
    threshold — i.e., it chases the network maximum at bounded rate.

    Within the model's envelope this is the natural "greedy" algorithm: it
    reacts to *any* deficit, unlike the gradient algorithm, which
    deliberately blocks on lagging neighbors. Greed is why it has no
    non-trivial local-skew guarantee: a node adjacent to a lagging region
    still races toward the distant maximum, re-opening the gap its neighbor
    is stuck with. *)

val algorithm : Algorithm.t
