module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng

type reference = { error : float -> float }

let perfect_reference = { error = (fun _ -> 0.) }

let noisy_reference ~bias ~wander ~period ~phase =
  if period <= 0. then invalid_arg "External_sync: period must be > 0";
  {
    error =
      (fun t -> bias +. (wander *. sin ((2. *. Float.pi *. t /. period) +. phase)));
  }

let query r ~now = now +. r.error now

let make_node ~anchors (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let spec = ctx.spec in
  let period = spec.Spec.beacon_period in
  let kappa = spec.Spec.kappa in
  let fast_mult = 1. +. spec.Spec.mu in
  (* The zeta-slowdown of the external-synchronization construction: every
     node's default pace is deliberately below real time, so that the
     virtual reference node is never the slowest clock and anchored nodes
     can pull the whole network toward true time through the ordinary fast
     trigger. *)
  let base_mult = Float.max 0.5 (1. -. (spec.Spec.mu /. 2.)) in
  let bounds = spec.Spec.delay in
  let flight_guess =
    0.5 *. (bounds.Delay_model.d_min +. bounds.Delay_model.d_max)
  in
  let anchor = anchors v in
  let estimators = ref [||] in
  let reference_offset () =
    match anchor with
    | None -> None
    | Some r ->
        let now = ctx.now () in
        Some (Logical_clock.value lc ~now -. query r ~now)
  in
  let offsets_now (api : Message.t Engine.api) =
    let h = api.hardware () in
    let own = Logical_clock.value lc ~now:(ctx.now ()) in
    let known = ref [] in
    (match reference_offset () with
    | Some o -> known := o :: !known
    | None -> ());
    Array.iter
      (fun est ->
        match Offset_estimator.offset ~max_age:spec.Spec.staleness_limit est
                ~h_local:h ~own_value:own with
        | Some o -> known := o :: !known
        | None -> ())
      !estimators;
    Array.of_list !known
  in
  let evaluate (api : Message.t Engine.api) =
    let offsets = offsets_now api in
    let target =
      if Gradient_sync.fast_trigger ~kappa ~offsets then fast_mult
      else base_mult
    in
    if Logical_clock.mult lc <> target then
      Logical_clock.set_mult lc ~now:(ctx.now ()) target
  in
  let broadcast (api : Message.t Engine.api) =
    let value = Logical_clock.value lc ~now:(ctx.now ()) in
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Beacon { value })
    done
  in
  let arm (api : Message.t Engine.api) ~tag delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag
  in
  {
    Engine.on_init =
      (fun api ->
        estimators := Array.init api.ports (fun _ -> Offset_estimator.create ());
        Logical_clock.set_mult lc ~now:(ctx.now ()) base_mult;
        arm api ~tag:Algorithm.timer_beacon (Prng.uniform api.rng ~lo:0. ~hi:period);
        arm api ~tag:Algorithm.timer_recheck
          (Prng.uniform api.rng ~lo:0. ~hi:(period /. 2.)));
    on_message =
      (fun api ~port msg ->
        match msg with
        | Message.Beacon { value } ->
            Offset_estimator.update !estimators.(port)
              ~h_local:(api.hardware ()) ~remote_value:value
              ~elapsed_guess:flight_guess;
            evaluate api
        | Message.Probe _ | Message.Probe_reply _ | Message.Flood _
        | Message.Report _ | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          broadcast api;
          arm api ~tag:Algorithm.timer_beacon period
        end
        else if tag = Algorithm.timer_recheck then begin
          evaluate api;
          arm api ~tag:Algorithm.timer_recheck (period /. 2.)
        end);
  }

let algorithm ~anchors =
  {
    Algorithm.name = "external-gradient";
    prepare = (fun ctx v -> make_node ~anchors ctx v);
  }
