(** Logical (output) clocks derived from a hardware clock.

    A synchronization algorithm controls its logical clock only through a
    rate multiplier relative to its hardware clock and, for algorithms that
    allow it (e.g. max-based synchronization), discrete forward jumps.
    Between control actions, [L(t) = base + mult * (H(t) - h_base)], so the
    logical rate is [mult * dH/dt] and stays within
    [[mult_min, mult_max * vartheta]] whenever the multiplier is kept within
    [[mult_min, mult_max]] — exactly the [alpha, beta] envelope of the
    model. *)

type t

val create : hardware:Hardware_clock.t -> now:float -> value:float -> mult:float -> t
(** A logical clock reading [value] at real time [now], with initial
    multiplier [mult > 0]. *)

val value : t -> now:float -> float
(** [L(now)]; [now] must not precede the last control action. *)

val rate : t -> now:float -> float
(** Instantaneous logical rate [mult * dH/dt](now). *)

val mult : t -> float
(** Current multiplier. *)

val set_mult : t -> now:float -> float -> unit
(** Change the multiplier from [now] on; continuous (no value jump). *)

val jump_to : t -> now:float -> float -> unit
(** Discretely set the clock value at [now]. The caller is responsible for
    monotonicity policy (max-based algorithms only ever jump forward). *)

val advance : t -> now:float -> float -> unit
(** [advance t ~now delta] adds [delta] to the current value. *)

val hardware : t -> Hardware_clock.t

type jump_stats = { count : int; total_magnitude : float; max_magnitude : float }

val jump_stats : t -> jump_stats
(** How often and how far this clock moved discontinuously ([jump_to] /
    [advance]). Discontinuities violate the model's bounded-rate output
    requirement; experiments report them so that jump-based algorithms
    (max synchronization) are not credited with skew they achieve by
    stepping outside the problem's rules. *)

val last_action : t -> float
(** Real time of the most recent control action. *)
