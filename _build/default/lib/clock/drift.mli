(** Drift schedules: how a hardware clock's rate evolves over a run.

    The model constrains rates to [1, vartheta] with [vartheta = 1 + rho].
    A pattern is expanded into an explicit breakpoint schedule over a finite
    horizon, clamped into the legal band, and applied to a clock up front —
    the simulated algorithm never sees the schedule, only the clock. The
    lower-bound adversary bypasses patterns and drives rates online instead
    (see [Gcs_adversary]). *)

type pattern =
  | Constant of float
      (** Fixed rate (clamped into the band). [Constant 1.] is a perfect
          clock; [Constant nan] means "the band midpoint". *)
  | Extreme_low  (** Always the minimum rate 1. *)
  | Extreme_high  (** Always the maximum rate vartheta. *)
  | Two_phase of { switch : float; before : float; after : float }
      (** Rate [before] until real time [switch], then [after]. *)
  | Square of { period : float; low : float; high : float; phase : float }
      (** Alternate between [low] and [high] every [period / 2]. *)
  | Sinusoid of { period : float; phase : float; step : float }
      (** Rate sweeps the band sinusoidally, discretized every [step]. *)
  | Random_walk of { step : float; sigma : float }
      (** Rate performs a reflected Gaussian random walk inside the band,
          one move per [step] of real time. *)
  | Random_constant
      (** A single uniformly random rate in the band, fixed for the run. *)
  | Explicit of (float * float) list
      (** Raw [(time, rate)] change-points, times non-decreasing. *)

type band = { rate_min : float; rate_max : float }

val band : rho:float -> band
(** The paper's band [1, 1 + rho]. Requires [rho >= 0.]. *)

val schedule :
  pattern ->
  band:band ->
  t0:float ->
  horizon:float ->
  rng:Gcs_util.Prng.t ->
  (float * float) list
(** Expand a pattern into clamped [(time, rate)] change-points covering
    [t0, t0 + horizon]. The first change-point is at [t0]. *)

val make_clock :
  pattern ->
  band:band ->
  t0:float ->
  horizon:float ->
  rng:Gcs_util.Prng.t ->
  Hardware_clock.t
(** Build a hardware clock with the whole schedule pre-applied. *)

val pattern_of_string : string -> (pattern, string) result
(** Parse CLI names: ["perfect"], ["fast"], ["slow"], ["mid"],
    ["random"], ["walk:<step>:<sigma>"], ["square:<period>"],
    ["sin:<period>"]. *)
