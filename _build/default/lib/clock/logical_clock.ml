type t = {
  hardware : Hardware_clock.t;
  mutable base : float; (* logical value at the last control action *)
  mutable h_base : float; (* hardware value at the last control action *)
  mutable mult : float;
  mutable last_action : float; (* real time of the last control action *)
  mutable jump_count : int;
  mutable jump_total : float; (* sum of |jump| *)
  mutable jump_max : float;
}

type jump_stats = { count : int; total_magnitude : float; max_magnitude : float }

let create ~hardware ~now ~value ~mult =
  if mult <= 0. then invalid_arg "Logical_clock.create: mult must be > 0";
  {
    hardware;
    base = value;
    h_base = Hardware_clock.value hardware ~now;
    mult;
    last_action = now;
    jump_count = 0;
    jump_total = 0.;
    jump_max = 0.;
  }

let value t ~now =
  if now < t.last_action then
    invalid_arg "Logical_clock.value: time precedes last control action";
  t.base +. (t.mult *. (Hardware_clock.value t.hardware ~now -. t.h_base))

let rate t ~now = t.mult *. Hardware_clock.rate_at t.hardware ~now
let mult t = t.mult

let resync t ~now =
  let v = value t ~now in
  t.base <- v;
  t.h_base <- Hardware_clock.value t.hardware ~now;
  t.last_action <- now

let set_mult t ~now m =
  if m <= 0. then invalid_arg "Logical_clock.set_mult: mult must be > 0";
  resync t ~now;
  t.mult <- m

let jump_to t ~now v =
  resync t ~now;
  let magnitude = Float.abs (v -. t.base) in
  t.jump_count <- t.jump_count + 1;
  t.jump_total <- t.jump_total +. magnitude;
  if magnitude > t.jump_max then t.jump_max <- magnitude;
  t.base <- v

let advance t ~now delta =
  resync t ~now;
  let magnitude = Float.abs delta in
  t.jump_count <- t.jump_count + 1;
  t.jump_total <- t.jump_total +. magnitude;
  if magnitude > t.jump_max then t.jump_max <- magnitude;
  t.base <- t.base +. delta

let hardware t = t.hardware
let last_action t = t.last_action

let jump_stats t =
  {
    count = t.jump_count;
    total_magnitude = t.jump_total;
    max_magnitude = t.jump_max;
  }
