module Prng = Gcs_util.Prng

type pattern =
  | Constant of float
  | Extreme_low
  | Extreme_high
  | Two_phase of { switch : float; before : float; after : float }
  | Square of { period : float; low : float; high : float; phase : float }
  | Sinusoid of { period : float; phase : float; step : float }
  | Random_walk of { step : float; sigma : float }
  | Random_constant
  | Explicit of (float * float) list

type band = { rate_min : float; rate_max : float }

let band ~rho =
  if rho < 0. then invalid_arg "Drift.band: rho must be >= 0";
  { rate_min = 1.; rate_max = 1. +. rho }

let clamp band r = Float.min band.rate_max (Float.max band.rate_min r)

let midpoint band = 0.5 *. (band.rate_min +. band.rate_max)

let schedule pattern ~band:b ~t0 ~horizon ~rng =
  if horizon < 0. then invalid_arg "Drift.schedule: negative horizon";
  let points =
    match pattern with
    | Constant r ->
        let r = if Float.is_nan r then midpoint b else r in
        [ (t0, r) ]
    | Extreme_low -> [ (t0, b.rate_min) ]
    | Extreme_high -> [ (t0, b.rate_max) ]
    | Two_phase { switch; before; after } ->
        if switch <= t0 then [ (t0, after) ]
        else [ (t0, before); (switch, after) ]
    | Square { period; low; high; phase } ->
        if period <= 0. then invalid_arg "Drift: square period must be > 0";
        (* [phase] counts half-periods of offset for the starting parity. *)
        let half = period /. 2. in
        let count = int_of_float (Float.ceil (horizon /. half)) + 1 in
        let parity0 = int_of_float phase land 1 in
        List.init count (fun i ->
            let t = t0 +. (float_of_int i *. half) in
            let r = if (i + parity0) mod 2 = 0 then high else low in
            (t, r))
    | Sinusoid { period; phase; step } ->
        if period <= 0. || step <= 0. then
          invalid_arg "Drift: sinusoid period and step must be > 0";
        let amp = (b.rate_max -. b.rate_min) /. 2. in
        let mid = midpoint b in
        let count = int_of_float (Float.ceil (horizon /. step)) + 1 in
        List.init count (fun i ->
            let t = t0 +. (float_of_int i *. step) in
            (t, mid +. (amp *. sin ((2. *. Float.pi *. (t +. phase)) /. period))))
    | Random_walk { step; sigma } ->
        if step <= 0. then invalid_arg "Drift: walk step must be > 0";
        let count = int_of_float (Float.ceil (horizon /. step)) + 1 in
        let r = ref (Prng.uniform rng ~lo:b.rate_min ~hi:b.rate_max) in
        List.init count (fun i ->
            let t = t0 +. (float_of_int i *. step) in
            let next = !r +. Prng.gaussian rng ~mu:0. ~sigma in
            (* Reflect off the band edges to keep the walk inside. *)
            let reflected =
              if next > b.rate_max then (2. *. b.rate_max) -. next
              else if next < b.rate_min then (2. *. b.rate_min) -. next
              else next
            in
            r := clamp b reflected;
            (t, !r))
    | Random_constant -> [ (t0, Prng.uniform rng ~lo:b.rate_min ~hi:b.rate_max) ]
    | Explicit points ->
        if points = [] then [ (t0, midpoint b) ]
        else begin
          let rec check_sorted = function
            | (t1, _) :: ((t2, _) :: _ as rest) ->
                if t2 < t1 then invalid_arg "Drift: explicit times decrease";
                check_sorted rest
            | _ -> ()
          in
          check_sorted points;
          match points with
          | (t, r) :: _ when t > t0 -> (t0, r) :: points
          | _ -> points
        end
  in
  List.map (fun (t, r) -> (Float.max t t0, clamp b r)) points

let make_clock pattern ~band:b ~t0 ~horizon ~rng =
  match schedule pattern ~band:b ~t0 ~horizon ~rng with
  | [] -> assert false
  | (start, rate0) :: rest ->
      let clock = Hardware_clock.create ~t0:start ~rate:rate0 () in
      List.iter
        (fun (t, rate) -> Hardware_clock.set_rate clock ~now:t ~rate)
        rest;
      clock

let pattern_of_string s =
  let fail () = Error (Printf.sprintf "unrecognized drift pattern %S" s) in
  match String.split_on_char ':' s with
  | [ "perfect" ] -> Ok (Constant 1.)
  | [ "fast" ] -> Ok Extreme_high
  | [ "slow" ] -> Ok Extreme_low
  | [ "mid" ] -> Ok (Constant nan)
  | [ "random" ] -> Ok Random_constant
  | [ "walk"; step; sigma ] -> (
      match (float_of_string_opt step, float_of_string_opt sigma) with
      | Some step, Some sigma -> Ok (Random_walk { step; sigma })
      | _ -> fail ())
  | [ "square"; period ] -> (
      match float_of_string_opt period with
      | Some period -> Ok (Square { period; low = 1.; high = infinity; phase = 0. })
      | None -> fail ())
  | [ "sin"; period ] -> (
      match float_of_string_opt period with
      | Some period -> Ok (Sinusoid { period; phase = 0.; step = period /. 16. })
      | None -> fail ())
  | _ -> fail ()
