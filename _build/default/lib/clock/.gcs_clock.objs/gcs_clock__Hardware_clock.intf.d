lib/clock/hardware_clock.mli:
