lib/clock/drift.ml: Float Gcs_util Hardware_clock List Printf String
