lib/clock/drift.mli: Gcs_util Hardware_clock
