lib/clock/logical_clock.ml: Float Hardware_clock
