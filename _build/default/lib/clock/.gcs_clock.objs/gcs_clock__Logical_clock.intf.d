lib/clock/logical_clock.mli: Hardware_clock
