lib/clock/hardware_clock.ml: Array List
