(** Plain-text table rendering for experiment output.

    The benchmark harness prints every reproduced table/figure as an aligned
    ASCII table; this module owns the formatting so all experiments share a
    uniform look. *)

type align = Left | Right

type column = { header : string; align : align }

val column : ?align:align -> string -> column
(** Column description; default alignment is [Right] (numeric data). *)

val render : columns:column list -> rows:string list list -> string
(** Render rows under headers with a separator rule. Rows shorter than the
    column list are padded with empty cells; longer rows are truncated. *)

val print : title:string -> columns:column list -> rows:string list list -> unit
(** [render] preceded by an underlined title, written to stdout. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point float formatting used throughout experiment output
    (default 3 digits). Renders [nan] as ["-"]. *)

val fmt_int : int -> string
