(** Binary min-heap keyed by float priority with an integer tiebreaker.

    This is the core data structure of the discrete-event engine: events are
    ordered by simulation time, and the monotonically increasing sequence
    number makes the pop order deterministic when several events share a
    timestamp (essential for reproducible runs). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val push : 'a t -> prio:float -> 'a -> unit
(** [push t ~prio x] inserts [x] with priority [prio]. Elements pushed
    earlier win ties. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element, or [None] if the heap is empty. *)

val peek : 'a t -> (float * 'a) option
(** Return without removing. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain a copy of the heap in priority order (the heap itself is not
    modified). Intended for tests and debugging. *)
