type align = Left | Right
type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let normalize_row ncols row =
  let rec take n = function
    | [] -> if n = 0 then [] else "" :: take (n - 1) []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take ncols row

let render ~columns ~rows =
  let ncols = List.length columns in
  let rows = List.map (normalize_row ncols) rows in
  let headers = List.map (fun c -> c.header) columns in
  let widths =
    List.mapi
      (fun i c ->
        let cell_width row = String.length (List.nth row i) in
        List.fold_left
          (fun w row -> max w (cell_width row))
          (String.length c.header) rows)
      columns
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let c = List.nth columns i in
          let w = List.nth widths i in
          pad c.align w cell)
        row
    in
    "  " ^ String.concat "  " cells
  in
  let rule =
    "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ~title ~columns ~rows =
  Printf.printf "\n%s\n%s\n%s" title
    (String.make (String.length title) '=')
    (render ~columns ~rows);
  flush stdout

let fmt_float ?(digits = 3) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_int = string_of_int
