(** Deterministic, splittable pseudo-random number generator.

    Every stochastic component of the simulator draws from a [Prng.t] that is
    derived from a single root seed, so that entire simulation runs are
    reproducible bit-for-bit from one integer. Splitting produces an
    independent stream, which lets each node, link, and subsystem own a
    private generator whose draws do not depend on the interleaving of other
    components. *)

type t

val create : seed:int -> t
(** [create ~seed] builds a generator from a root seed. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]. Children obtained in the same order from the same seed are
    identical across runs. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent child generators. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float
(** [uniform t ~lo ~hi] draws uniformly from [lo, hi]. Requires [lo <= hi]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal draw. *)

val exponential : t -> rate:float -> float
(** Exponential draw with the given rate (mean [1. /. rate]). *)

val choice : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
