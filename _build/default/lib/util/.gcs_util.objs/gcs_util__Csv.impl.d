lib/util/csv.ml: Buffer Filename Fun List String Sys
