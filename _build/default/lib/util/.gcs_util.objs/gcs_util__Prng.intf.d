lib/util/prng.mli:
