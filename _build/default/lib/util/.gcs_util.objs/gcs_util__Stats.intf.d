lib/util/stats.mli:
