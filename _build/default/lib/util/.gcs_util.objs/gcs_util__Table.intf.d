lib/util/table.mli:
