lib/util/csv.mli:
