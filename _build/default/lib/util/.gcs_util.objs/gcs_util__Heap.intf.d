lib/util/heap.mli:
