type t = Random.State.t

(* SplitMix64 step, used to derive well-separated child seeds from a parent
   stream without correlating the two. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let create ~seed =
  let s = splitmix64 (Int64.of_int seed) in
  Random.State.make [| Int64.to_int s; seed; Int64.to_int (splitmix64 s) |]

let split t =
  let a = Random.State.bits t
  and b = Random.State.bits t in
  let s = splitmix64 (Int64.of_int ((a lsl 30) lxor b)) in
  Random.State.make [| Int64.to_int s; a; b |]

let split_n t n = Array.init n (fun _ -> split t)
let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. Random.State.float t (hi -. lo)

let bool t = Random.State.bool t

let gaussian t ~mu ~sigma =
  (* Box-Muller; discard the second variate for simplicity. *)
  let rec draw () =
    let u1 = Random.State.float t 1.0 in
    if u1 <= 0. then draw () else u1
  in
  let u1 = draw () in
  let u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.);
  let rec draw () =
    let u = Random.State.float t 1.0 in
    if u <= 0. then draw () else u
  in
  -.log (draw ()) /. rate

let choice t a =
  assert (Array.length a > 0);
  a.(Random.State.int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
