let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_cell s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_row row = String.concat "," (List.map escape_cell row)

let render ~header ~rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write ~path ~header ~rows =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~header ~rows))
