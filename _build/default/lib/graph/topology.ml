module Prng = Gcs_util.Prng

let line n =
  if n < 1 then invalid_arg "Topology.line: n must be >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Topology.ring: n must be >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topology.grid: dims must be >= 1";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Topology.torus: dims must be >= 3";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (idx r c, idx r ((c + 1) mod cols)) :: !edges;
      edges := (idx r c, idx ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let complete n =
  if n < 2 then invalid_arg "Topology.complete: n must be >= 2";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let star n =
  if n < 2 then invalid_arg "Topology.star: n must be >= 2";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let binary_tree ~depth =
  if depth < 0 then invalid_arg "Topology.binary_tree: depth must be >= 0";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / 2) :: !edges
  done;
  Graph.of_edges ~n !edges

let hypercube ~dim =
  if dim < 1 then invalid_arg "Topology.hypercube: dim must be >= 1";
  let n = 1 lsl dim in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let w = v lxor (1 lsl b) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

(* Connect a possibly-disconnected edge set by attaching every non-root
   component to a random node of the already-connected part. *)
let connect ~n ~rng edges =
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun (u, v) -> union u v) edges;
  let extra = ref [] in
  for v = 1 to n - 1 do
    if find v <> find 0 then begin
      (* Pick a random node already connected to 0 to attach to. *)
      let candidates =
        Array.of_seq
          (Seq.filter (fun w -> find w = find 0) (Seq.init n (fun i -> i)))
      in
      let w = Prng.choice rng candidates in
      extra := (v, w) :: !extra;
      union v w
    end
  done;
  edges @ !extra

let random_gnp ~n ~p ~rng =
  if n < 2 then invalid_arg "Topology.random_gnp: n must be >= 2";
  if p < 0. || p > 1. then invalid_arg "Topology.random_gnp: p out of range";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n (connect ~n ~rng !edges)

let random_geometric ~n ~radius ~rng =
  if n < 2 then invalid_arg "Topology.random_geometric: n must be >= 2";
  let pos =
    Array.init n (fun _ -> (Prng.float rng 1.0, Prng.float rng 1.0))
  in
  let dist2 (x1, y1) (x2, y2) =
    ((x1 -. x2) *. (x1 -. x2)) +. ((y1 -. y2) *. (y1 -. y2))
  in
  let r2 = radius *. radius in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dist2 pos.(u) pos.(v) <= r2 then edges := (u, v) :: !edges
    done
  done;
  (Graph.of_edges ~n (connect ~n ~rng !edges), pos)

type spec =
  | Line of int
  | Ring of int
  | Grid of int * int
  | Torus of int * int
  | Complete of int
  | Star of int
  | Binary_tree of int
  | Hypercube of int
  | Random_gnp of int * float
  | Random_geometric of int * float

let build spec ~rng =
  match spec with
  | Line n -> line n
  | Ring n -> ring n
  | Grid (r, c) -> grid ~rows:r ~cols:c
  | Torus (r, c) -> torus ~rows:r ~cols:c
  | Complete n -> complete n
  | Star n -> star n
  | Binary_tree d -> binary_tree ~depth:d
  | Hypercube d -> hypercube ~dim:d
  | Random_gnp (n, p) -> random_gnp ~n ~p ~rng
  | Random_geometric (n, r) -> fst (random_geometric ~n ~radius:r ~rng)

let spec_name = function
  | Line n -> Printf.sprintf "line:%d" n
  | Ring n -> Printf.sprintf "ring:%d" n
  | Grid (r, c) -> Printf.sprintf "grid:%dx%d" r c
  | Torus (r, c) -> Printf.sprintf "torus:%dx%d" r c
  | Complete n -> Printf.sprintf "complete:%d" n
  | Star n -> Printf.sprintf "star:%d" n
  | Binary_tree d -> Printf.sprintf "btree:%d" d
  | Hypercube d -> Printf.sprintf "hypercube:%d" d
  | Random_gnp (n, p) -> Printf.sprintf "gnp:%d:%g" n p
  | Random_geometric (n, r) -> Printf.sprintf "geometric:%d:%g" n r

let spec_of_string s =
  let fail () = Error (Printf.sprintf "unrecognized topology %S" s) in
  let int_of s = int_of_string_opt s in
  let float_of s = float_of_string_opt s in
  match String.split_on_char ':' s with
  | [ "line"; n ] -> (
      match int_of n with Some n -> Ok (Line n) | None -> fail ())
  | [ "ring"; n ] -> (
      match int_of n with Some n -> Ok (Ring n) | None -> fail ())
  | [ ("grid" | "torus") as kind; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ r; c ] -> (
          match (int_of r, int_of c) with
          | Some r, Some c ->
              if kind = "grid" then Ok (Grid (r, c)) else Ok (Torus (r, c))
          | _ -> fail ())
      | _ -> fail ())
  | [ "complete"; n ] -> (
      match int_of n with Some n -> Ok (Complete n) | None -> fail ())
  | [ "star"; n ] -> (
      match int_of n with Some n -> Ok (Star n) | None -> fail ())
  | [ "btree"; d ] -> (
      match int_of d with Some d -> Ok (Binary_tree d) | None -> fail ())
  | [ "hypercube"; d ] -> (
      match int_of d with Some d -> Ok (Hypercube d) | None -> fail ())
  | [ "gnp"; n; p ] -> (
      match (int_of n, float_of p) with
      | Some n, Some p -> Ok (Random_gnp (n, p))
      | _ -> fail ())
  | [ "geometric"; n; r ] -> (
      match (int_of n, float_of r) with
      | Some n, Some r -> Ok (Random_geometric (n, r))
      | _ -> fail ())
  | _ -> fail ()
