(** Standard topology generators for experiments.

    The Fan-Lynch lower bound lives on the line; the gradient property is
    probed across the other families (the grid models on-chip clock
    distribution, random geometric graphs model wireless deployments). *)

val line : int -> Graph.t
(** Path on [n >= 1] nodes: 0 - 1 - ... - n-1. Diameter n-1. *)

val ring : int -> Graph.t
(** Cycle on [n >= 3] nodes. Diameter floor(n/2). *)

val grid : rows:int -> cols:int -> Graph.t
(** [rows * cols] grid; node (r, c) has index [r * cols + c]. *)

val torus : rows:int -> cols:int -> Graph.t
(** Grid with wrap-around edges; requires [rows >= 3] and [cols >= 3]. *)

val complete : int -> Graph.t
val star : int -> Graph.t
(** Star with center 0 and [n - 1] leaves; requires [n >= 2]. *)

val binary_tree : depth:int -> Graph.t
(** Complete binary tree of the given depth (depth 0 is a single node). *)

val hypercube : dim:int -> Graph.t
(** [2^dim] nodes, edges between indices differing in one bit. *)

val random_gnp : n:int -> p:float -> rng:Gcs_util.Prng.t -> Graph.t
(** Erdos-Renyi G(n, p), post-processed to be connected by linking each
    non-root component to a uniformly random node outside it. *)

val random_geometric :
  n:int -> radius:float -> rng:Gcs_util.Prng.t -> Graph.t * (float * float) array
(** [n] points uniform in the unit square, edges between pairs at Euclidean
    distance at most [radius], connected the same way as {!random_gnp}.
    Returns the positions alongside the graph. *)

type spec =
  | Line of int
  | Ring of int
  | Grid of int * int
  | Torus of int * int
  | Complete of int
  | Star of int
  | Binary_tree of int
  | Hypercube of int
  | Random_gnp of int * float
  | Random_geometric of int * float

val build : spec -> rng:Gcs_util.Prng.t -> Graph.t
(** Build any topology from its description (randomized families draw from
    [rng]; deterministic families ignore it). *)

val spec_name : spec -> string
val spec_of_string : string -> (spec, string) result
(** Parse e.g. ["line:64"], ["grid:8x8"], ["gnp:100:0.05"]. Used by the CLI. *)
