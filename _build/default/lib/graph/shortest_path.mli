(** Distance computations on graphs.

    Hop distances drive the gradient-function metric f(d) of the GCS
    problem; weighted variants support delay-weighted distances (the
    "uncertainty distance" of the Fan-Lynch model in which each hop
    contributes its delay uncertainty). *)

val bfs : Graph.t -> src:int -> int array
(** Hop distances from [src]; unreachable nodes get [max_int]. *)

val all_pairs : Graph.t -> int array array
(** Hop distances between all pairs (BFS from every node). *)

val diameter : Graph.t -> int
(** Maximum finite hop distance. Raises [Invalid_argument] if the graph is
    disconnected. *)

val eccentricity : Graph.t -> int -> int
(** Maximum hop distance from a node. *)

val dijkstra : Graph.t -> weights:float array -> src:int -> float array
(** Single-source shortest paths with non-negative per-edge weights indexed
    by edge id; unreachable nodes get [infinity]. Raises [Invalid_argument]
    on a negative weight. *)

val weighted_diameter : Graph.t -> weights:float array -> float
(** Maximum finite weighted distance over all pairs. *)

val bellman_ford :
  n:int ->
  arcs:(int * int * float) array ->
  src:int ->
  (float array, unit) result
(** Directed single-source shortest paths over explicit arcs
    [(src, dst, weight)]; [Error ()] if a negative cycle is reachable. *)

val floyd_warshall : Graph.t -> weights:float array -> float array array
(** All-pairs weighted distances; reference implementation for tests. *)
