(** BFS spanning trees.

    [Tree_sync] (the NTP/PTP-style baseline) synchronizes along a BFS tree;
    the self-stabilization literature uses the same structure for
    convergecast. *)

type t = {
  root : int;
  parent : int array;  (** [parent.(root) = root] *)
  depth : int array;  (** hop depth from the root *)
  children : int array array;
  order : int array;  (** nodes in BFS (top-down) order, [order.(0) = root] *)
}

val bfs_tree : Graph.t -> root:int -> t
(** Raises [Invalid_argument] if the graph is disconnected. *)

val height : t -> int
val is_tree_edge : t -> int -> int -> bool
(** Whether the undirected pair is a parent/child link of the tree. *)

val path_to_root : t -> int -> int list
(** Node list from a node up to (and including) the root. *)
