type t = {
  n : int;
  edges : (int * int) array;
  adj : (int * int) array array; (* per node: (neighbor, edge id) by port *)
}

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let seen = Hashtbl.create (List.length edge_list) in
  let normalize (u, v) =
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    if u < 0 || v < 0 || u >= n || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    (min u v, max u v)
  in
  let edges =
    List.map
      (fun e ->
        let e = normalize e in
        if Hashtbl.mem seen e then invalid_arg "Graph.of_edges: duplicate edge";
        Hashtbl.add seen e ();
        e)
      edge_list
    |> Array.of_list
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (-1, -1)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id (u, v) ->
      adj.(u).(fill.(u)) <- (v, id);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, id);
      fill.(v) <- fill.(v) + 1)
    edges;
  { n; edges; adj }

let n t = t.n
let m t = Array.length t.edges
let edges t = t.edges
let edge_endpoints t id = t.edges.(id)
let degree t v = Array.length t.adj.(v)
let neighbors t v = t.adj.(v)
let neighbor_at_port t v p = fst t.adj.(v).(p)
let edge_at_port t v p = snd t.adj.(v).(p)

let port_of_neighbor t v w =
  let adj = t.adj.(v) in
  let rec go i =
    if i >= Array.length adj then raise Not_found
    else if fst adj.(i) = w then i
    else go (i + 1)
  in
  go 0

let mem_edge t u v =
  Array.exists (fun (w, _) -> w = v) t.adj.(u)

let is_connected t =
  if t.n = 0 then true
  else begin
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    Queue.push 0 queue;
    seen.(0) <- true;
    let count = ref 1 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun (w, _) ->
          if not seen.(w) then begin
            seen.(w) <- true;
            incr count;
            Queue.push w queue
          end)
        t.adj.(v)
    done;
    !count = t.n
  end

let fold_edges f t acc =
  let acc = ref acc in
  Array.iteri (fun id (u, v) -> acc := f id u v !acc) t.edges;
  !acc
