module Heap = Gcs_util.Heap

let bfs g ~src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun (w, _) ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.push w queue
        end)
      (Graph.neighbors g v)
  done;
  dist

let all_pairs g = Array.init (Graph.n g) (fun v -> bfs g ~src:v)

let eccentricity g v =
  let dist = bfs g ~src:v in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Shortest_path: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

let dijkstra g ~weights ~src =
  Array.iter
    (fun w ->
      if w < 0. then invalid_arg "Shortest_path.dijkstra: negative weight")
    weights;
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let heap = Heap.create () in
  dist.(src) <- 0.;
  Heap.push heap ~prio:0. src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if d <= dist.(v) then
          Array.iter
            (fun (w, e) ->
              let nd = d +. weights.(e) in
              if nd < dist.(w) then begin
                dist.(w) <- nd;
                Heap.push heap ~prio:nd w
              end)
            (Graph.neighbors g v);
        loop ()
  in
  loop ();
  dist

let weighted_diameter g ~weights =
  let best = ref 0. in
  for v = 0 to Graph.n g - 1 do
    let dist = dijkstra g ~weights ~src:v in
    Array.iter
      (fun d -> if Float.is_finite d then best := Float.max !best d)
      dist
  done;
  !best

let bellman_ford ~n ~arcs ~src =
  let dist = Array.make n infinity in
  dist.(src) <- 0.;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    Array.iter
      (fun (u, v, w) ->
        if Float.is_finite dist.(u) && dist.(u) +. w < dist.(v) then begin
          dist.(v) <- dist.(u) +. w;
          changed := true
        end)
      arcs
  done;
  if !changed then Error () else Ok dist

let floyd_warshall g ~weights =
  let n = Graph.n g in
  let dist = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    dist.(v).(v) <- 0.
  done;
  Array.iteri
    (fun id (u, v) ->
      dist.(u).(v) <- Float.min dist.(u).(v) weights.(id);
      dist.(v).(u) <- Float.min dist.(v).(u) weights.(id))
    (Graph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = dist.(i).(k) +. dist.(k).(j) in
        if via < dist.(i).(j) then dist.(i).(j) <- via
      done
    done
  done;
  dist
