lib/graph/spanning_tree.ml: Array Graph List Queue
