lib/graph/topology.ml: Array Gcs_util Graph List Printf Seq String
