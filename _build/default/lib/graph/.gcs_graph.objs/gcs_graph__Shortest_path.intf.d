lib/graph/shortest_path.mli: Graph
