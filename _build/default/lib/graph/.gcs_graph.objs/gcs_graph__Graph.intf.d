lib/graph/graph.mli:
