lib/graph/shortest_path.ml: Array Float Gcs_util Graph Queue
