lib/graph/topology.mli: Gcs_util Graph
