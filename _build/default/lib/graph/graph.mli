(** Undirected simple graphs with indexed edges and port numbering.

    Nodes are integers [0 .. n-1]. Each undirected edge has a unique id in
    [0 .. m-1]. A node sees its incident edges through local *ports*
    (positions in its adjacency list); algorithms in the synchronization
    layer address neighbors only by port, matching the message-passing model
    in which nodes need not know global identities. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes. Raises
    [Invalid_argument] on self-loops, duplicate edges, or endpoints outside
    [0, n). *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val edges : t -> (int * int) array
(** Edge endpoints indexed by edge id, with [fst < snd]. *)

val edge_endpoints : t -> int -> int * int
(** Endpoints of an edge id. *)

val degree : t -> int -> int

val neighbors : t -> int -> (int * int) array
(** [neighbors g v] is the array of [(neighbor, edge_id)] pairs, indexed by
    port. The returned array must not be mutated. *)

val neighbor_at_port : t -> int -> int -> int
(** [neighbor_at_port g v p] is the node at port [p] of node [v]. *)

val edge_at_port : t -> int -> int -> int
(** [edge_at_port g v p] is the edge id at port [p] of node [v]. *)

val port_of_neighbor : t -> int -> int -> int
(** [port_of_neighbor g v w] is the port of [v] that leads to [w].
    Raises [Not_found] if [w] is not adjacent to [v]. *)

val mem_edge : t -> int -> int -> bool
val is_connected : t -> bool

val fold_edges : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g acc] folds [f edge_id u v] over all edges. *)
