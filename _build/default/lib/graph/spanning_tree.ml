type t = {
  root : int;
  parent : int array;
  depth : int array;
  children : int array array;
  order : int array;
}

let bfs_tree g ~root =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  parent.(root) <- root;
  depth.(root) <- 0;
  Queue.push root queue;
  let next = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!next) <- v;
    incr next;
    Array.iter
      (fun (w, _) ->
        if depth.(w) < 0 then begin
          depth.(w) <- depth.(v) + 1;
          parent.(w) <- v;
          Queue.push w queue
        end)
      (Graph.neighbors g v)
  done;
  if !next <> n then invalid_arg "Spanning_tree.bfs_tree: disconnected graph";
  let child_count = Array.make n 0 in
  Array.iteri
    (fun v p -> if v <> p then child_count.(p) <- child_count.(p) + 1)
    parent;
  let children = Array.init n (fun v -> Array.make child_count.(v) (-1)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v p ->
      if v <> p then begin
        children.(p).(fill.(p)) <- v;
        fill.(p) <- fill.(p) + 1
      end)
    parent;
  { root; parent; depth; children; order }

let height t = Array.fold_left max 0 t.depth

let is_tree_edge t u v = t.parent.(u) = v || t.parent.(v) = u

let path_to_root t v =
  let rec go v acc =
    if t.parent.(v) = v then List.rev (v :: acc) else go t.parent.(v) (v :: acc)
  in
  go v []
