module Engine = Gcs_sim.Engine
module Delay_model = Gcs_sim.Delay_model
module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics

type report = {
  result : Runner.result;
  forced_global : float;
  forced_local : float;
  lower_bound : float;
}

let attack ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync) ?horizon
    ?(seed = 42) ~n () =
  if n < 2 then invalid_arg "Linear.attack: n must be >= 2";
  let u = Spec.uncertainty spec in
  let d = float_of_int (n - 1) in
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
        (* Enough time for drift at rate rho to build the hideable u * D of
           skew, capped to keep large instances affordable. *)
        if spec.Spec.rho = 0. then 200.
        else Float.min 20_000. (u *. d /. spec.Spec.rho)
  in
  let graph = Topology.line n in
  let midpoint = (n - 1) / 2 in
  let fast v = v <= midpoint in
  let run_cfg =
    Runner.config ~spec ~algo
      ~drift_of_node:(fun v ->
        if fast v then Drift.Extreme_high else Drift.Extreme_low)
      ~delay_kind:Runner.Controlled_delays ~horizon
      ~sample_period:(Float.max 0.5 (horizon /. 1000.))
      ~warmup:0. ~seed graph
  in
  let live = Runner.prepare run_cfg in
  let b = spec.Spec.delay in
  let mid_delay = 0.5 *. (b.Delay_model.d_min +. b.Delay_model.d_max) in
  live.Runner.chooser :=
    Some
      (fun ~edge:_ ~src ~dst ~now:_ ->
        if fast src && not (fast dst) then b.Delay_model.d_max
        else if (not (fast src)) && fast dst then b.Delay_model.d_min
        else mid_delay);
  let result = Runner.complete live in
  let tail = Metrics.summarize graph result.Runner.samples ~after:(0.75 *. horizon) in
  {
    result;
    forced_global = tail.Metrics.max_global;
    forced_local = tail.Metrics.max_local;
    lower_bound = u *. d /. 4.;
  }
