(** The linear global-skew adversary (the Biaz-Welch-style context bound).

    The Fan-Lynch paper motivates GCS with the fact that *global* skew must
    grow linearly in the diameter: delay uncertainty hides up to u of offset
    per hop, so across a line of diameter D an adversary can keep
    Omega(u * D) of skew invisible to any algorithm. This controller runs
    the single-phase version of the attack — one half fast, one half slow,
    delays skewed to hide it — for the whole horizon and reports the global
    skew it forced next to the u * D / 4 reference line. *)

type report = {
  result : Gcs_core.Runner.result;
  forced_global : float;  (** max global skew over the final quarter *)
  forced_local : float;
  lower_bound : float;  (** u * D / 4 *)
}

val attack :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?horizon:float ->
  ?seed:int ->
  n:int ->
  unit ->
  report
(** Attack a line of [n] nodes; [horizon] defaults to enough time for the
    drift gap to saturate the hideable skew (u * D / rho, capped). *)
