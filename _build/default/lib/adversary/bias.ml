module Delay_model = Gcs_sim.Delay_model
module Topology = Gcs_graph.Topology
module Graph = Gcs_graph.Graph
module Shortest_path = Gcs_graph.Shortest_path
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics

type orientation = src:int -> dst:int -> bool

let ring_orientation ~n ~src ~dst = (src + 1) mod n = dst

type report = {
  result : Runner.result;
  forced_local : float;
  forced_global : float;
}

let attack ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync) ?horizon
    ?(seed = 42) ~graph ~orientation () =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> 60. *. float_of_int (max 4 (Shortest_path.diameter graph))
  in
  let run_cfg =
    Runner.config ~spec ~algo ~delay_kind:Runner.Controlled_delays ~horizon
      ~sample_period:(Float.max 0.5 (horizon /. 1000.))
      ~warmup:0. ~seed graph
  in
  let live = Runner.prepare run_cfg in
  let b = spec.Spec.delay in
  live.Runner.chooser :=
    Some
      (fun ~edge:_ ~src ~dst ~now:_ ->
        if orientation ~src ~dst then b.Delay_model.d_max
        else b.Delay_model.d_min);
  let result = Runner.complete live in
  let tail =
    Metrics.summarize graph result.Runner.samples ~after:(0.75 *. horizon)
  in
  {
    result;
    forced_local = tail.Metrics.max_local;
    forced_global = tail.Metrics.max_global;
  }

let attack_ring ?spec ?algo ?horizon ?seed ~n () =
  if n < 3 then invalid_arg "Bias.attack_ring: n must be >= 3";
  attack ?spec ?algo ?horizon ?seed ~graph:(Topology.ring n)
    ~orientation:(fun ~src ~dst -> ring_orientation ~n ~src ~dst)
    ()
