lib/adversary/churn.mli: Gcs_core Gcs_graph Gcs_util
