lib/adversary/crash.ml: Array Float Gcs_clock Gcs_core Gcs_graph List
