lib/adversary/crash.mli: Gcs_clock Gcs_core Gcs_graph
