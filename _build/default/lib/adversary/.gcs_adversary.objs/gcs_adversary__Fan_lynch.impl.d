lib/adversary/fan_lynch.ml: Array Float Gcs_clock Gcs_core Gcs_graph Gcs_sim Gcs_util List
