lib/adversary/bias.mli: Gcs_core Gcs_graph
