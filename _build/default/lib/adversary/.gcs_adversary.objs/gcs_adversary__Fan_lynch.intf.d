lib/adversary/fan_lynch.mli: Gcs_core
