lib/adversary/search.mli: Gcs_core
