lib/adversary/linear.mli: Gcs_core
