lib/adversary/churn.ml: Array Float Gcs_core Gcs_graph Gcs_util List
