lib/adversary/search.ml: Float Gcs_clock Gcs_core Gcs_graph Gcs_sim List
