module Engine = Gcs_sim.Engine
module Delay_model = Gcs_sim.Delay_model
module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Logical_clock = Gcs_clock.Logical_clock
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds
module Message = Gcs_core.Message
module Prng = Gcs_util.Prng

type config = {
  spec : Spec.t;
  n : int;
  algo : Algorithm.kind;
  shrink : int;
  phase_crossings : float;
  tail : float;
  seed : int;
}

and report = {
  config : config;
  result : Runner.result;
  forced_local : float;
  forced_global : float;
  phases : int;
  horizon : float;
  lower_bound : float;
}

let default_config ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync)
    ?shrink ?(phase_crossings = 6.) ?(tail = 0.25) ?(seed = 42) ~n () =
  if n < 2 then invalid_arg "Fan_lynch.default_config: n must be >= 2";
  let shrink =
    match shrink with
    | Some s ->
        if s < 2 then invalid_arg "Fan_lynch: shrink must be >= 2";
        s
    | None ->
        max 2 (int_of_float (Float.ceil (Gcs_util.Stats.log2 (float_of_int n))))
  in
  { spec; n; algo; shrink; phase_crossings; tail; seed }

(* One phase per interval scale, plus the final single-edge scale. *)
let plan_phases cfg =
  let rec go len acc =
    if len <= 1 then List.rev (1 :: acc)
    else go (max 1 (len / cfg.shrink)) (len :: acc)
  in
  go (cfg.n - 1) []

let phase_duration cfg len =
  let d_max = cfg.spec.Spec.delay.Delay_model.d_max in
  cfg.phase_crossings *. float_of_int len *. d_max
  |> Float.max (4. *. cfg.spec.Spec.beacon_period)

let total_horizon cfg =
  let body =
    List.fold_left (fun acc len -> acc +. phase_duration cfg len) 0.
      (plan_phases cfg)
  in
  body /. (1. -. cfg.tail)

(* Mutable attack state shared between the delay chooser and the phase
   controller. [lo, hi] is the current attack interval (node indices on the
   line); [forward] is the direction in which skew is being amplified:
   [true] means the low end is the fast side. *)
type state = {
  mutable lo : int;
  mutable hi : int;
  mutable forward : bool;
  mutable phases_run : int;
}

let inside st v = v >= st.lo && v <= st.hi

let fast_side st v =
  let midpoint = (st.lo + st.hi) / 2 in
  if st.forward then v <= midpoint else v > midpoint

(* Delay choice: beacons leaving the fast half travel slowly (d_max), hiding
   the sender's lead; beacons leaving the slow half travel fast (d_min),
   making the trailer look current. Everything else takes the midpoint. *)
let choose_delay st (b : Delay_model.bounds) ~src ~dst =
  let mid = 0.5 *. (b.Delay_model.d_min +. b.Delay_model.d_max) in
  if not (inside st src && inside st dst) then mid
  else if fast_side st src && not (fast_side st dst) then b.Delay_model.d_max
  else if (not (fast_side st src)) && fast_side st dst then b.Delay_model.d_min
  else mid

(* Rate assignment for the current phase: fast half at 1 + rho, slow half
   and all outsiders at 1. *)
let apply_rates st (live : Runner.live) ~rho =
  let n = Array.length live.Runner.logical in
  for v = 0 to n - 1 do
    let rate = if inside st v && fast_side st v then 1. +. rho else 1. in
    Engine.set_node_rate live.Runner.engine ~node:v ~rate
  done

(* Pick the sub-interval of length [len] whose endpoints currently carry the
   largest absolute logical skew; set the push direction to amplify it. *)
let refocus st (live : Runner.live) ~len =
  let sample = Runner.snapshot live in
  let values = sample.Metrics.values in
  let best = ref (st.lo, true, neg_infinity) in
  for lo = st.lo to st.hi - len do
    let signed = values.(lo) -. values.(lo + len) in
    if Float.abs signed > (fun (_, _, b) -> b) !best then
      best := (lo, signed >= 0., Float.abs signed)
  done;
  let lo, forward, _ = !best in
  st.lo <- lo;
  st.hi <- lo + len;
  st.forward <- forward

let attack cfg =
  let graph = Topology.line cfg.n in
  let horizon = total_horizon cfg in
  let run_cfg =
    Runner.config ~spec:cfg.spec ~algo:cfg.algo
      ~drift_of_node:(fun _ -> Drift.Constant 1.)
      ~delay_kind:Runner.Controlled_delays ~horizon
      ~sample_period:(Float.max 0.25 (horizon /. 2000.))
      ~warmup:0. ~seed:cfg.seed graph
  in
  let live = Runner.prepare run_cfg in
  let st = { lo = 0; hi = cfg.n - 1; forward = true; phases_run = 0 } in
  let bounds = cfg.spec.Spec.delay in
  live.Runner.chooser :=
    Some (fun ~edge:_ ~src ~dst ~now:_ -> choose_delay st bounds ~src ~dst);
  let phases = plan_phases cfg in
  (* Schedule phase transitions as control events. *)
  let rec schedule at = function
    | [] -> ()
    | len :: rest ->
        Engine.schedule_control live.Runner.engine ~at (fun () ->
            if st.phases_run > 0 then refocus st live ~len;
            st.phases_run <- st.phases_run + 1;
            apply_rates st live ~rho:cfg.spec.Spec.rho);
        schedule (at +. phase_duration cfg len) rest
  in
  schedule 0. phases;
  let result = Runner.complete live in
  let tail_start = horizon *. (1. -. cfg.tail) in
  let tail_summary =
    Metrics.summarize graph result.Runner.samples ~after:tail_start
  in
  {
    config = cfg;
    result;
    forced_local = tail_summary.Metrics.max_local;
    forced_global = tail_summary.Metrics.max_global;
    phases = st.phases_run;
    horizon;
    lower_bound =
      Bounds.fan_lynch_lower
        ~u:(Spec.uncertainty cfg.spec)
        ~diameter:(cfg.n - 1);
  }
