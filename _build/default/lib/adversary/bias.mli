(** The directional delay-bias adversary.

    The cheapest attack in the Fan-Lynch arsenal: pick a consistent
    orientation of the edges and deliver every message [d_max] along the
    orientation and [d_min] against it. Each hop's offset estimate is then
    biased by u/2 in the same direction, invisibly to any algorithm
    (two-way exchanges are fooled equally, since request and reply see
    opposite directions).

    On a ring this is devastating for tree-based synchronization: both
    branches of the BFS tree inherit opposite biases, so the skew across
    the edge closing the cycle grows as Theta(u * D) — while the gradient
    algorithm, which balances *perceived* offsets around the whole
    neighborhood, keeps every edge within O(kappa). This is experiment E3's
    separation mechanism. *)

type orientation = src:int -> dst:int -> bool
(** [true] when the message travels "with" the orientation (gets [d_max]). *)

val ring_orientation : n:int -> orientation
(** Clockwise = with the orientation. *)

type report = {
  result : Gcs_core.Runner.result;
  forced_local : float;  (** max local skew over the final quarter *)
  forced_global : float;
}

val attack :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?horizon:float ->
  ?seed:int ->
  graph:Gcs_graph.Graph.t ->
  orientation:orientation ->
  unit ->
  report
(** Run with the bias installed for the whole horizon; hardware clocks drift
    at per-node random constant rates (the benign default), so the bias is
    the only adversarial ingredient. [horizon] defaults to 60 times the
    graph diameter. *)

val attack_ring :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?horizon:float ->
  ?seed:int ->
  n:int ->
  unit ->
  report
(** [attack] on a ring of [n] nodes with {!ring_orientation}. *)
