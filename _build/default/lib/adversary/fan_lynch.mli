(** The Fan-Lynch lower-bound adversary, made executable.

    The PODC 2004 proof shows every GCS algorithm admits executions with
    local skew Omega(u * log D / log log D) on a line of diameter D. The
    proof's adversary has exactly two levers, both of which our simulator
    exposes to controllers: per-node hardware drift within [1, 1 + rho]
    (via [Engine.set_node_rate]) and per-message delays within
    [d_min, d_max] (via the runner's controlled-delay chooser). It is
    omniscient — it reads true logical clock values — but cannot touch
    algorithm state.

    The executable strategy follows the proof's phase structure:

    - maintain an attack interval of the line, initially the whole line;
    - during a phase, run the interval's leading half at maximum drift and
      the trailing half at minimum, while skewing message delays so that
      beacons *from* the fast half travel at [d_max] and beacons from the
      slow half at [d_min] — each observer then mis-estimates its
      neighbor's clock by u/2 in the direction that hides the buildup;
    - a phase lasts long enough for information to cross the interval a
      few times (the "bounded increase" window in which the algorithm
      cannot shed interval-internal skew);
    - at the end of a phase, pick the sub-interval (shrunk by roughly a
      log D factor, as in the proof) currently carrying the largest signed
      skew and recurse into it, pushing in the direction that amplifies it;
    - once the interval is a single edge, keep pressing until the horizon.

    The report compares the skew the attack forces against the theorem's
    c * u * log D / log log D line. *)

type config = {
  spec : Gcs_core.Spec.t;
  n : int;  (** line length (diameter is n - 1) *)
  algo : Gcs_core.Algorithm.kind;
  shrink : int;
      (** interval shrink factor per phase; the proof's choice is about
          log2 D, the default *)
  phase_crossings : float;
      (** phase length in units of the time needed to cross the current
          interval at [d_max] *)
  tail : float;  (** fraction of the horizon reserved for the final edge *)
  seed : int;
}

and report = {
  config : config;
  result : Gcs_core.Runner.result;
  forced_local : float;
      (** max local skew over the attack tail (the theorem's quantity) *)
  forced_global : float;
  phases : int;
  horizon : float;
  lower_bound : float;  (** {!Bounds.fan_lynch_lower} for this instance *)
}

val default_config :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?shrink:int ->
  ?phase_crossings:float ->
  ?tail:float ->
  ?seed:int ->
  n:int ->
  unit ->
  config
(** [shrink] defaults to [max 2 (ceil (log2 n))], [phase_crossings] to 6,
    [tail] to 0.25, [algo] to [Gradient_sync]. *)

val attack : config -> report
(** Run the full attack and measure what it forced. *)
