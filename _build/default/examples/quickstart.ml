(* Quickstart: synchronize a 16-node ring with the gradient algorithm and
   print the skews an operator would care about.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds
module Shortest_path = Gcs_graph.Shortest_path
module Table = Gcs_util.Table

let () =
  let graph = Topology.ring 16 in
  let spec = Spec.make () in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:400. ~seed:7
      graph
  in
  let result = Runner.run cfg in
  let s = result.Runner.summary in
  let diameter = Shortest_path.diameter graph in
  Printf.printf "Gradient clock synchronization on a 16-node ring\n";
  Printf.printf "------------------------------------------------\n";
  Printf.printf "diameter                 : %d\n" diameter;
  Printf.printf "delay uncertainty u      : %g\n" (Spec.uncertainty spec);
  Printf.printf "drift bound rho          : %g\n" spec.Spec.rho;
  Printf.printf "skew quantum kappa       : %.3f\n" spec.Spec.kappa;
  Printf.printf "messages sent            : %d\n" result.Runner.messages;
  Printf.printf "max local skew           : %.3f\n" s.Metrics.max_local;
  Printf.printf "max global skew          : %.3f\n" s.Metrics.max_global;
  Printf.printf "analytic local envelope  : %.3f\n"
    (Bounds.gradient_local_upper spec ~diameter);
  Printf.printf "\nEmpirical gradient profile (max skew by hop distance):\n";
  let profile =
    Metrics.max_gradient_profile graph result.Runner.samples
      ~after:cfg.Runner.warmup
  in
  Table.print ~title:"f(distance)"
    ~columns:[ Table.column ~align:Table.Left "distance"; Table.column "max skew" ]
    ~rows:
      (Array.to_list
         (Array.mapi
            (fun i skew ->
              [ string_of_int (i + 1); Table.fmt_float skew ])
            profile))
