(* A synchronized data-center fabric: everything at once.

   A folded-Clos-ish fabric (modeled as a torus for regularity) where
   operators want globally valid timestamps (external sync against two
   GPS-disciplined anchors), tight neighbor synchronization for synchronous
   low-latency routing (the gradient property), resilience to link flaps
   (churn), and automatic recovery if a node's clock register is corrupted
   (the self-stabilization monitor).

   Run with: dune exec examples/datacenter.exe *)

module Topology = Gcs_graph.Topology
module Shortest_path = Gcs_graph.Shortest_path
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module External_sync = Gcs_core.External_sync
module Stabilize = Gcs_core.Stabilize
module Churn = Gcs_adversary.Churn
module Lc = Gcs_clock.Logical_clock

let () =
  let graph = Topology.torus ~rows:6 ~cols:6 in
  let diameter = Shortest_path.diameter graph in
  let spec =
    Spec.make ~rho:1e-3 ~mu:0.05 ~d_min:0.8 ~d_max:1.2 ~beacon_period:1. ()
  in
  Printf.printf "Fabric: 6x6 torus (36 switches), diameter %d, u = %g\n"
    diameter (Spec.uncertainty spec);

  (* Stage 1: external sync with two GPS anchors, one of which has a bias. *)
  let gps_good = External_sync.perfect_reference in
  let gps_biased =
    External_sync.noisy_reference ~bias:0.05 ~wander:0.05 ~period:200. ~phase:1.
  in
  let anchors v =
    if v = 0 then Some gps_good else if v = 21 then Some gps_biased else None
  in
  let algo = External_sync.algorithm ~anchors in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:algo
      ~horizon:1500. ~sample_period:2. ~seed:3 graph
  in
  let r = Runner.run cfg in
  let rt =
    Array.fold_left
      (fun acc (s : Metrics.sample) ->
        if s.Metrics.time >= 750. then
          Float.max acc
            (Metrics.real_time_skew ~time:s.Metrics.time s.Metrics.values)
        else acc)
      0. r.Runner.samples
  in
  Printf.printf "\n[external sync, 2 anchors]\n";
  Printf.printf "timestamps track UTC within : %.3f\n" rt;
  Printf.printf "neighbor skew (guard band)  : %.3f\n"
    r.Runner.summary.Metrics.max_local;

  (* Stage 2: the same fabric under 25%% link churn. *)
  let churn =
    Churn.run
      (Churn.default_config ~spec ~algo:Algorithm.Gradient_sync ~duty:0.25
         ~graph ~seed:5 ())
  in
  Printf.printf "\n[25%% link churn]\n";
  Printf.printf "realized message loss       : %.1f%%\n"
    (100. *. churn.Churn.downtime_fraction);
  Printf.printf "neighbor skew under churn   : %.3f\n" churn.Churn.forced_local;

  (* Stage 3: a corrupted clock register, caught by the monitor. *)
  let wrapped, stats =
    Stabilize.wrap ~inner:(Gcs_core.Registry.get Algorithm.Gradient_sync) ()
  in
  let healed =
    Runner.run
      (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:wrapped
         ~initial_value_of_node:(fun v -> if v = 17 then 1e7 else 0.)
         ~horizon:600. ~warmup:500. ~seed:7 graph)
  in
  Printf.printf "\n[corrupted clock at switch 17: +1e7]\n";
  Printf.printf "monitor rounds / resets     : %d / %d\n"
    stats.Stabilize.rounds_completed stats.Stabilize.resets;
  Printf.printf "global skew after recovery  : %.3f\n"
    healed.Runner.summary.Metrics.final_global;
  Printf.printf "reset jumps performed       : %d\n"
    healed.Runner.jumps.Lc.count
