(* The Fan-Lynch lower-bound adversary in action.

   Runs the scale-recursive attack from the PODC 2004 proof against every
   implemented algorithm on a line, and the single-phase linear adversary
   that forces Omega(u * D) global skew. The printed "theorem line" is
   c * u * log D / log log D.

   Run with: dune exec examples/lower_bound_demo.exe *)

module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Metrics = Gcs_core.Metrics
module Fan_lynch = Gcs_adversary.Fan_lynch
module Linear = Gcs_adversary.Linear
module Table = Gcs_util.Table

let () =
  let n = 33 in
  let spec = Spec.make () in
  Printf.printf "Fan-Lynch adversary on a line of %d nodes (D = %d)\n" n (n - 1);
  let rows =
    List.map
      (fun kind ->
        let cfg = Fan_lynch.default_config ~spec ~algo:kind ~n () in
        let report = Fan_lynch.attack cfg in
        [
          Algorithm.kind_name kind;
          Table.fmt_float report.Fan_lynch.forced_local;
          Table.fmt_float report.Fan_lynch.forced_global;
          string_of_int report.Fan_lynch.phases;
          Table.fmt_float report.Fan_lynch.lower_bound;
        ])
      Algorithm.all_kinds
  in
  Table.print ~title:"Forced skew under the scale-recursive attack"
    ~columns:
      [
        Table.column ~align:Table.Left "algorithm";
        Table.column "forced local";
        Table.column "forced global";
        Table.column "phases";
        Table.column "theorem line";
      ]
    ~rows;
  Printf.printf "\nLinear adversary (global skew must be Omega(u * D)):\n";
  let rows =
    List.map
      (fun kind ->
        let report = Linear.attack ~spec ~algo:kind ~n () in
        [
          Algorithm.kind_name kind;
          Table.fmt_float report.Linear.forced_global;
          Table.fmt_float report.Linear.lower_bound;
        ])
      [ Algorithm.Max_sync; Algorithm.Tree_sync; Algorithm.Gradient_sync ]
  in
  Table.print ~title:"Forced global skew under the linear attack"
    ~columns:
      [
        Table.column ~align:Table.Left "algorithm";
        Table.column "forced global";
        Table.column "u*D/4";
      ]
    ~rows
