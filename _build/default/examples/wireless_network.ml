(* Wireless base-station synchronization.

   Base stations in a cellular deployment synchronize over the air to align
   transmission slots; what matters is the skew between *interfering*
   (nearby) stations, not stations at opposite ends of the deployment — the
   textbook case for gradient clock synchronization. We model the
   deployment as a random geometric graph (stations connect within radio
   range) with heavy delay jitter, run the gradient algorithm, and show
   that skew degrades gracefully with hop distance. A second run adds
   mobile relays: per-message delays track the current distance between
   endpoints (random-waypoint motion).

   Run with: dune exec examples/wireless_network.exe *)

module Topology = Gcs_graph.Topology
module Graph = Gcs_graph.Graph
module Shortest_path = Gcs_graph.Shortest_path
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Prng = Gcs_util.Prng
module Table = Gcs_util.Table

let () =
  let rng = Prng.create ~seed:2024 in
  let graph, _positions = Topology.random_geometric ~n:60 ~radius:0.22 ~rng in
  let diameter = Shortest_path.diameter graph in
  (* Radio environment: wide delay band (multipath, MAC contention),
     mid-grade oscillators. *)
  let spec =
    Spec.make ~rho:5e-3 ~mu:0.08 ~d_min:0.2 ~d_max:1.8 ~beacon_period:1. ()
  in
  Printf.printf
    "Wireless deployment: %d stations, %d links, diameter %d, u = %g\n"
    (Graph.n graph) (Graph.m graph) diameter (Spec.uncertainty spec);
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:2500.
      ~sample_period:2. ~seed:5 graph
  in
  let result = Runner.run cfg in
  let s = result.Runner.summary in
  Printf.printf "max local skew  : %.3f (slot guard-band the system needs)\n"
    s.Metrics.max_local;
  Printf.printf "max global skew : %.3f\n" s.Metrics.max_global;
  let profile =
    Metrics.max_gradient_profile graph result.Runner.samples
      ~after:cfg.Runner.warmup
  in
  Table.print ~title:"Skew gradient across the deployment"
    ~columns:
      [ Table.column ~align:Table.Left "hop distance"; Table.column "max skew" ]
    ~rows:
      (List.filteri
         (fun i _ -> i < diameter)
         (Array.to_list
            (Array.mapi
               (fun i skew -> [ string_of_int (i + 1); Table.fmt_float skew ])
               profile)));
  (* The headline property: neighbors are far better synchronized than the
     global envelope suggests. *)
  let tighter = s.Metrics.max_global /. Float.max s.Metrics.max_local 1e-9 in
  Printf.printf
    "\nNeighbors are %.1fx better synchronized than the global skew.\n" tighter;

  (* Mobile variant: the same deployment with delays tracking motion. *)
  let cfg_mobile =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~delay_kind:Runner.Controlled_delays ~horizon:2500. ~sample_period:2.
      ~seed:5 graph
  in
  let live = Runner.prepare cfg_mobile in
  let mobility =
    Gcs_sim.Mobility.random_waypoint ~n:(Graph.n graph) ~speed:0.05
      ~horizon:2500. ~rng:(Prng.create ~seed:77)
  in
  live.Runner.chooser :=
    Some (Gcs_sim.Mobility.delay_chooser mobility ~bounds:spec.Spec.delay);
  let mobile = Runner.complete live in
  Printf.printf "with mobile relays: max local skew %.3f (static: %.3f)\n"
    mobile.Runner.summary.Metrics.max_local s.Metrics.max_local
