(* Clock distribution for synchronous hardware.

   The GCS literature's flagship application: a grid of clock nodes spread
   over a chip or data-center fabric, where the skew between *physically
   adjacent* nodes bounds the safe operating frequency. We run every
   algorithm on an 8x8 grid with hardware-grade parameters (tight drift,
   sub-unit delay jitter) and compare the local skew each one sustains —
   the gradient algorithm's whole raison d'etre is winning this column.

   Run with: dune exec examples/clock_distribution.exe *)

module Topology = Gcs_graph.Topology
module Shortest_path = Gcs_graph.Shortest_path
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds
module Table = Gcs_util.Table

let () =
  let graph = Topology.grid ~rows:8 ~cols:8 in
  let diameter = Shortest_path.diameter graph in
  (* A quartz-disciplined clock tree: drift 1e-4, delay jitter 0.1 around a
     unit hop latency. Time unit: one beacon interval. *)
  let spec =
    Spec.make ~rho:1e-4 ~mu:0.01 ~d_min:0.95 ~d_max:1.05 ~beacon_period:1. ()
  in
  Printf.printf "On-chip clock distribution: 8x8 grid, diameter %d\n" diameter;
  Printf.printf "u = %g, rho = %g, kappa = %.4f\n" (Spec.uncertainty spec)
    spec.Spec.rho spec.Spec.kappa;
  let rows =
    List.map
      (fun kind ->
        let cfg =
          Runner.config ~spec ~algo:kind ~horizon:8000. ~sample_period:4.
            ~seed:11 graph
        in
        let r = Runner.run cfg in
        let s = r.Runner.summary in
        [
          Algorithm.kind_name kind;
          Table.fmt_float s.Metrics.max_local;
          Table.fmt_float s.Metrics.mean_local;
          Table.fmt_float s.Metrics.max_global;
          string_of_int r.Runner.messages;
        ])
      Algorithm.all_kinds
  in
  Table.print ~title:"Algorithm comparison (lower local skew is better)"
    ~columns:
      [
        Table.column ~align:Table.Left "algorithm";
        Table.column "max local";
        Table.column "mean local";
        Table.column "max global";
        Table.column "messages";
      ]
    ~rows;
  Printf.printf "\nGradient-algorithm analytic local envelope: %.4f\n"
    (Bounds.gradient_local_upper spec ~diameter)
