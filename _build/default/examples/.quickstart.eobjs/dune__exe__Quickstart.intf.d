examples/quickstart.mli:
