examples/clock_distribution.ml: Gcs_core Gcs_graph Gcs_util List Printf
