examples/wireless_network.ml: Array Float Gcs_core Gcs_graph Gcs_sim Gcs_util List Printf
