examples/wireless_network.mli:
