examples/datacenter.mli:
