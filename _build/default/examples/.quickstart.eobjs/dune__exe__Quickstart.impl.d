examples/quickstart.ml: Array Gcs_core Gcs_graph Gcs_util Printf
