examples/datacenter.ml: Array Float Gcs_adversary Gcs_clock Gcs_core Gcs_graph Printf
