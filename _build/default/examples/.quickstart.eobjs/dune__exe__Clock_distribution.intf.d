examples/clock_distribution.mli:
