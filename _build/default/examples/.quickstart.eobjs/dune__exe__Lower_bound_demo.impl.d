examples/lower_bound_demo.ml: Gcs_adversary Gcs_core Gcs_util List Printf
