module Drift = Gcs_clock.Drift
module Hc = Gcs_clock.Hardware_clock
module Prng = Gcs_util.Prng

let band = Drift.band ~rho:0.02

let rates_of_schedule pattern ~seed =
  let rng = Prng.create ~seed in
  Drift.schedule pattern ~band ~t0:0. ~horizon:100. ~rng

let all_in_band points =
  List.for_all (fun (_, r) -> r >= 1. && r <= 1.02 +. 1e-12) points

let times_sorted points =
  let rec go = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && go rest
    | _ -> true
  in
  go points

let test_constant () =
  match rates_of_schedule (Drift.Constant 1.01) ~seed:1 with
  | [ (0., 1.01) ] -> ()
  | _ -> Alcotest.fail "unexpected constant schedule"

let test_constant_clamped () =
  match rates_of_schedule (Drift.Constant 5.) ~seed:1 with
  | [ (0., r) ] -> Alcotest.(check (float 1e-12)) "clamped" 1.02 r
  | _ -> Alcotest.fail "unexpected shape"

let test_extremes () =
  (match rates_of_schedule Drift.Extreme_low ~seed:1 with
  | [ (0., 1.) ] -> ()
  | _ -> Alcotest.fail "low");
  match rates_of_schedule Drift.Extreme_high ~seed:1 with
  | [ (0., r) ] -> Alcotest.(check (float 1e-12)) "high" 1.02 r
  | _ -> Alcotest.fail "high shape"

let test_nan_means_midpoint () =
  match rates_of_schedule (Drift.Constant nan) ~seed:1 with
  | [ (0., r) ] -> Alcotest.(check (float 1e-12)) "midpoint" 1.01 r
  | _ -> Alcotest.fail "shape"

let test_two_phase () =
  let pts =
    rates_of_schedule
      (Drift.Two_phase { switch = 50.; before = 1.; after = 1.02 })
      ~seed:1
  in
  Alcotest.(check int) "two points" 2 (List.length pts);
  Alcotest.(check bool) "in band" true (all_in_band pts)

let test_square_alternates () =
  let pts =
    rates_of_schedule
      (Drift.Square { period = 20.; low = 1.; high = 1.02; phase = 0. })
      ~seed:1
  in
  Alcotest.(check bool) "sorted" true (times_sorted pts);
  let rates = List.map snd pts in
  let rec alternates = function
    | a :: b :: rest -> a <> b && alternates (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "alternates" true (alternates rates)

let prop_walk_in_band =
  QCheck.Test.make ~name:"random walk stays in the drift band" ~count:100
    QCheck.small_nat
    (fun seed ->
      let pts =
        rates_of_schedule (Drift.Random_walk { step = 2.; sigma = 0.01 }) ~seed
      in
      all_in_band pts && times_sorted pts)

let prop_sinusoid_in_band =
  QCheck.Test.make ~name:"sinusoid stays in the drift band" ~count:50
    QCheck.small_nat
    (fun seed ->
      let pts =
        rates_of_schedule
          (Drift.Sinusoid { period = 30.; phase = float_of_int seed; step = 3. })
          ~seed
      in
      all_in_band pts && times_sorted pts)

let test_explicit_rejects_unsorted () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Drift: explicit times decrease") (fun () ->
      ignore
        (rates_of_schedule (Drift.Explicit [ (5., 1.); (3., 1.01) ]) ~seed:1))

let test_explicit_extends_to_t0 () =
  let pts = rates_of_schedule (Drift.Explicit [ (10., 1.01) ]) ~seed:1 in
  match pts with
  | (0., 1.01) :: _ -> ()
  | _ -> Alcotest.fail "schedule must start at t0"

let test_make_clock_applies_schedule () =
  let rng = Prng.create ~seed:3 in
  let clock =
    Drift.make_clock
      (Drift.Two_phase { switch = 10.; before = 1.; after = 1.02 })
      ~band ~t0:0. ~horizon:100. ~rng
  in
  Alcotest.(check (float 1e-9)) "phase 1 value" 5. (Hc.value clock ~now:5.);
  Alcotest.(check (float 1e-9)) "phase 2 value"
    (10. +. (1.02 *. 10.))
    (Hc.value clock ~now:20.)

let test_band_validation () =
  Alcotest.check_raises "negative rho"
    (Invalid_argument "Drift.band: rho must be >= 0") (fun () ->
      ignore (Drift.band ~rho:(-0.1)))

let test_pattern_parsing () =
  List.iter
    (fun s ->
      match Drift.pattern_of_string s with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    [ "perfect"; "fast"; "slow"; "mid"; "random"; "walk:2:0.01"; "square:10"; "sin:30" ];
  match Drift.pattern_of_string "bogus" with
  | Ok _ -> Alcotest.fail "accepted bogus pattern"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "constant clamped" `Quick test_constant_clamped;
    Alcotest.test_case "extremes" `Quick test_extremes;
    Alcotest.test_case "nan midpoint" `Quick test_nan_means_midpoint;
    Alcotest.test_case "two phase" `Quick test_two_phase;
    Alcotest.test_case "square alternates" `Quick test_square_alternates;
    Alcotest.test_case "explicit unsorted" `Quick test_explicit_rejects_unsorted;
    Alcotest.test_case "explicit extends" `Quick test_explicit_extends_to_t0;
    Alcotest.test_case "make_clock" `Quick test_make_clock_applies_schedule;
    Alcotest.test_case "band validation" `Quick test_band_validation;
    Alcotest.test_case "pattern parsing" `Quick test_pattern_parsing;
    QCheck_alcotest.to_alcotest prop_walk_in_band;
    QCheck_alcotest.to_alcotest prop_sinusoid_in_band;
  ]
