module Message = Gcs_core.Message

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_to_string_all_variants () =
  let cases =
    [
      (Message.Beacon { value = 1.5 }, "Beacon");
      (Message.Probe { seq = 3; h_send = 2. }, "Probe");
      ( Message.Probe_reply { seq = 3; h_send = 2.; remote_value = 5. },
        "ProbeReply" );
      (Message.Flood { round = 7; payload = 1. }, "Flood");
      (Message.Report { round = 7; lo = -1.; hi = 2. }, "Report");
      (Message.Reset { round = 7; payload = 9. }, "Reset");
    ]
  in
  List.iter
    (fun (msg, tag) ->
      let s = Message.to_string msg in
      Alcotest.(check bool) (tag ^ " mentioned") true (contains s tag))
    cases

let test_to_string_carries_values () =
  Alcotest.(check bool) "beacon value" true
    (contains (Message.to_string (Message.Beacon { value = 42. })) "42");
  Alcotest.(check bool) "report range" true
    (contains
       (Message.to_string (Message.Report { round = 1; lo = 3.; hi = 8. }))
       "8")

let test_registry_names_consistent () =
  List.iter
    (fun (kind, algo) ->
      Alcotest.(check string) "registry name matches kind"
        (Gcs_core.Algorithm.kind_name kind)
        algo.Gcs_core.Algorithm.name)
    Gcs_core.Registry.all

let test_kind_roundtrip () =
  List.iter
    (fun kind ->
      match
        Gcs_core.Algorithm.kind_of_string (Gcs_core.Algorithm.kind_name kind)
      with
      | Ok k ->
          Alcotest.(check string) "roundtrip"
            (Gcs_core.Algorithm.kind_name kind)
            (Gcs_core.Algorithm.kind_name k)
      | Error e -> Alcotest.fail e)
    Gcs_core.Algorithm.all_kinds

let suite =
  [
    Alcotest.test_case "to_string variants" `Quick test_to_string_all_variants;
    Alcotest.test_case "to_string values" `Quick test_to_string_carries_values;
    Alcotest.test_case "registry names" `Quick test_registry_names_consistent;
    Alcotest.test_case "kind roundtrip" `Quick test_kind_roundtrip;
  ]
