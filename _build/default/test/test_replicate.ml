module Replicate = Gcs_core.Replicate

let test_constant_measurement () =
  let s = Replicate.measure ~seeds:[ 1; 2; 3; 4 ] (fun _ -> 5.) in
  Alcotest.(check (float 1e-12)) "mean" 5. s.Replicate.mean;
  Alcotest.(check (float 1e-12)) "stddev" 0. s.Replicate.stddev;
  Alcotest.(check (float 1e-12)) "ci" 0. s.Replicate.ci95;
  Alcotest.(check int) "trials" 4 s.Replicate.trials

let test_seed_dependent () =
  let s = Replicate.measure ~seeds:[ 0; 10 ] (fun seed -> float_of_int seed) in
  Alcotest.(check (float 1e-12)) "mean" 5. s.Replicate.mean;
  Alcotest.(check (float 1e-12)) "min" 0. s.Replicate.min;
  Alcotest.(check (float 1e-12)) "max" 10. s.Replicate.max;
  Alcotest.(check bool) "ci positive" true (s.Replicate.ci95 > 0.)

let test_single_seed_no_ci () =
  let s = Replicate.measure ~seeds:[ 7 ] (fun _ -> 3. ) in
  Alcotest.(check (float 1e-12)) "ci zero" 0. s.Replicate.ci95

let test_empty_rejected () =
  match Replicate.measure ~seeds:[] (fun _ -> 0.) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted empty seeds"

let test_seeds_distinct () =
  let seeds = Replicate.seeds 16 in
  let sorted = List.sort_uniq compare seeds in
  Alcotest.(check int) "all distinct" 16 (List.length sorted)

let test_to_string () =
  let s = Replicate.measure ~seeds:[ 1; 2 ] (fun x -> float_of_int x) in
  Alcotest.(check bool) "contains plus-minus" true
    (String.length (Replicate.to_string s) > 3)

let test_real_simulation_spread () =
  (* Across seeds, gradient local skew on a ring has small relative spread:
     the algorithm's behaviour is parameter- not luck-driven. *)
  let measure seed =
    let r =
      Gcs_core.Runner.run
        (Gcs_core.Runner.config ~spec:(Gcs_core.Spec.make ())
           ~algo:Gcs_core.Algorithm.Gradient_sync ~horizon:200. ~seed
           (Gcs_graph.Topology.ring 12))
    in
    r.Gcs_core.Runner.summary.Gcs_core.Metrics.max_local
  in
  let s = Replicate.measure ~seeds:(Replicate.seeds 8) measure in
  Alcotest.(check bool) "small relative spread" true
    (s.Replicate.stddev < 0.5 *. s.Replicate.mean)

let suite =
  [
    Alcotest.test_case "constant" `Quick test_constant_measurement;
    Alcotest.test_case "seed dependent" `Quick test_seed_dependent;
    Alcotest.test_case "single seed" `Quick test_single_seed_no_ci;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "seeds distinct" `Quick test_seeds_distinct;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "simulation spread" `Quick test_real_simulation_spread;
  ]
