(* The fast/slow trigger logic is the heart of the gradient algorithm; these
   tests pin its semantics level by level. Offsets are o_{v,w} = own - w. *)

let fast = Gcs_core.Gradient_sync.fast_trigger ~kappa:1.
let slow = Gcs_core.Gradient_sync.slow_trigger ~kappa:1.

let check = Alcotest.(check bool)

let test_no_neighbors () =
  check "no neighbors never fast" false (fast ~offsets:[||]);
  check "no neighbors is slow" true (slow ~offsets:[||])

let test_balanced () =
  check "all zero not fast" false (fast ~offsets:[| 0.; 0. |]);
  check "all zero slow" true (slow ~offsets:[| 0.; 0. |])

let test_level0_fast () =
  (* Neighbor ahead by 1.5 kappa (offset -1.5), nobody behind: level 0 fast
     condition (ahead >= kappa, behind <= kappa). *)
  check "pulled up" true (fast ~offsets:[| -1.5; 0. |])

let test_fast_blocked_by_laggard () =
  (* A neighbor ahead by 1.5 but another behind by 2: level 0 needs
     behind <= 1, level 1 needs ahead >= 3. Blocked. *)
  check "blocked" false (fast ~offsets:[| -1.5; 2. |])

let test_level1_fast () =
  (* Ahead by 3.5, behind by 2.5: level 1 (threshold 3) applies. *)
  check "level 1 fires" true (fast ~offsets:[| -3.5; 2.5 |])

let test_level_mismatch () =
  (* Ahead by 3.9 (s=1 threshold 3 satisfied), but behind by 3.5 > 3 and
     ahead < 5 (s=2): no level works. *)
  check "no level" false (fast ~offsets:[| -3.9; 3.5 |])

let test_slow_level1 () =
  (* Behind by 2.5 (>= 2s with s=1), ahead 1.5 <= 2: slow holds. *)
  check "slow level 1" true (slow ~offsets:[| 2.5; -1.5 |])

let test_slow_blocked () =
  (* Behind by 2.5 but ahead by 3: s=1 fails (ahead > 2), s=2 needs
     behind >= 4. *)
  check "slow blocked" false (slow ~offsets:[| 2.5; -3. |])

let test_exact_thresholds () =
  (* ahead exactly kappa satisfies level 0 (>=); behind exactly kappa
     satisfies the universal part (<=). *)
  check "boundary fast" true (fast ~offsets:[| -1.; 1. |]);
  (* behind exactly 0 with s=0: trivially slow. *)
  check "boundary slow" true (slow ~offsets:[| 0. |])

let test_scaling_invariance () =
  (* Triggers scale with kappa. *)
  let fast_k k = Gcs_core.Gradient_sync.fast_trigger ~kappa:k in
  check "kappa 2, gap 3" true (fast_k 2. ~offsets:[| -3.; 0. |]);
  check "kappa 4, gap 3" false (fast_k 4. ~offsets:[| -3.; 0. |])

(* The paper's key structural fact (Kuhn-Oshman Lemma): the fast and slow
   *conditions* are mutually exclusive. Our implementation runs slow
   whenever fast does not hold, which is safe given this property. *)
let prop_mutually_exclusive =
  QCheck.Test.make ~name:"fast and slow triggers are mutually exclusive"
    ~count:2000
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-10.) 10.))
    (fun offsets ->
      let o = Array.of_list offsets in
      not (fast ~offsets:o && slow ~offsets:o))

let prop_fast_needs_leader =
  QCheck.Test.make ~name:"fast requires a neighbor ahead by >= kappa"
    ~count:1000
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-10.) 10.))
    (fun offsets ->
      let o = Array.of_list offsets in
      if fast ~offsets:o then Array.exists (fun x -> -.x >= 1.) o else true)

let prop_uniform_shift_down_keeps_fast =
  (* If everyone moves ahead of us by the same extra amount, fast stays. *)
  QCheck.Test.make ~name:"falling further behind keeps the fast trigger"
    ~count:500
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5) (float_range (-5.) 5.))
        (float_range 0. 5.))
    (fun (offsets, delta) ->
      let o = Array.of_list offsets in
      if fast ~offsets:o then
        fast ~offsets:(Array.map (fun x -> x -. delta) o)
      else true)

let suite =
  [
    Alcotest.test_case "no neighbors" `Quick test_no_neighbors;
    Alcotest.test_case "balanced" `Quick test_balanced;
    Alcotest.test_case "level 0 fast" `Quick test_level0_fast;
    Alcotest.test_case "fast blocked" `Quick test_fast_blocked_by_laggard;
    Alcotest.test_case "level 1 fast" `Quick test_level1_fast;
    Alcotest.test_case "level mismatch" `Quick test_level_mismatch;
    Alcotest.test_case "slow level 1" `Quick test_slow_level1;
    Alcotest.test_case "slow blocked" `Quick test_slow_blocked;
    Alcotest.test_case "exact thresholds" `Quick test_exact_thresholds;
    Alcotest.test_case "kappa scaling" `Quick test_scaling_invariance;
    QCheck_alcotest.to_alcotest prop_mutually_exclusive;
    QCheck_alcotest.to_alcotest prop_fast_needs_leader;
    QCheck_alcotest.to_alcotest prop_uniform_shift_down_keeps_fast;
  ]
