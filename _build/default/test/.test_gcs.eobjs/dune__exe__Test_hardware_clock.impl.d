test/test_hardware_clock.ml: Alcotest Float Gcs_clock Gcs_util List Printf QCheck QCheck_alcotest
