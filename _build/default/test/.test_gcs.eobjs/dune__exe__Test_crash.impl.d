test/test_crash.ml: Alcotest Array Gcs_adversary Gcs_clock Gcs_core Gcs_graph Printf
