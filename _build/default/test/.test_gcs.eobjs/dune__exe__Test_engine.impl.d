test/test_engine.ml: Alcotest Array Gcs_clock Gcs_graph Gcs_sim Gcs_util List QCheck QCheck_alcotest
