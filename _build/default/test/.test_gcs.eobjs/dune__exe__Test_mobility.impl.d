test/test_mobility.ml: Alcotest Float Gcs_core Gcs_graph Gcs_sim Gcs_util List Printf QCheck QCheck_alcotest
