test/test_heap.ml: Alcotest Gcs_util List QCheck QCheck_alcotest
