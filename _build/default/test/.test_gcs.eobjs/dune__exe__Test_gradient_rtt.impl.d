test/test_gradient_rtt.ml: Alcotest Array Gcs_clock Gcs_core Gcs_graph Gcs_sim Gcs_util Printf
