test/test_stabilize.ml: Alcotest Gcs_clock Gcs_core Gcs_graph List
