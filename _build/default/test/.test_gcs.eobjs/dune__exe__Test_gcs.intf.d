test/test_gcs.mli:
