test/test_logical_clock.ml: Alcotest Gcs_clock QCheck QCheck_alcotest
