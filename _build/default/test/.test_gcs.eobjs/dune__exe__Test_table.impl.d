test/test_table.ml: Alcotest Gcs_util List String
