test/test_metrics.ml: Alcotest Array Float Gcs_core Gcs_graph Gcs_util QCheck QCheck_alcotest
