test/test_gradient_hetero.ml: Alcotest Array Float Gcs_core Gcs_graph Gcs_sim Gen Printf QCheck QCheck_alcotest
