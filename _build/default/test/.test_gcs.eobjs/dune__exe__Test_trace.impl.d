test/test_trace.ml: Alcotest Array Buffer Format Gcs_clock Gcs_graph Gcs_sim Gcs_util List String
