test/test_spec.ml: Alcotest Float Gcs_core Gcs_sim
