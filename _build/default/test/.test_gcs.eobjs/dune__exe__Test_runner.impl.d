test/test_runner.ml: Alcotest Array Gcs_core Gcs_graph Gcs_sim List
