test/test_shortest_path.ml: Alcotest Array Float Gcs_graph Gcs_util List QCheck QCheck_alcotest
