test/test_integration.ml: Alcotest Array Float Gcs_adversary Gcs_core Gcs_graph Gcs_sim Gcs_util Printf
