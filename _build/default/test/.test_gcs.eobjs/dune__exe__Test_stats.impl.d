test/test_stats.ml: Alcotest Array Float Gcs_util Gen QCheck QCheck_alcotest
