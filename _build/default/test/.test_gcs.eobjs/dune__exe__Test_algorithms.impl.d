test/test_algorithms.ml: Alcotest Array Float Gcs_clock Gcs_core Gcs_graph List Printf
