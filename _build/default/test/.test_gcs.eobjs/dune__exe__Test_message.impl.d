test/test_message.ml: Alcotest Gcs_core List String
