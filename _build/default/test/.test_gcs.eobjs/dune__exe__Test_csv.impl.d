test/test_csv.ml: Alcotest Filename Gcs_util Sys
