test/test_search.ml: Alcotest Gcs_adversary Gcs_core List
