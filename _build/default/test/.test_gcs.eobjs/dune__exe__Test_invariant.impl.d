test/test_invariant.ml: Alcotest Gcs_core Gcs_graph List String
