test/test_offset_estimator.ml: Alcotest Float Gcs_core QCheck QCheck_alcotest
