test/test_triggers.ml: Alcotest Array Gcs_core Gen QCheck QCheck_alcotest
