test/test_external_sync.ml: Alcotest Array Float Gcs_clock Gcs_core Gcs_graph Printf
