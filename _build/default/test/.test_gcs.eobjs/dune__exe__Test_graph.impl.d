test/test_graph.ml: Alcotest Array Gcs_graph Gcs_util QCheck QCheck_alcotest
