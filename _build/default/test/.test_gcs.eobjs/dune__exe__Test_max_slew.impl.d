test/test_max_slew.ml: Alcotest Array Gcs_clock Gcs_core Gcs_graph Printf
