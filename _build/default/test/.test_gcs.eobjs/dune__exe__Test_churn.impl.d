test/test_churn.ml: Alcotest Array Float Gcs_adversary Gcs_core Gcs_graph Gcs_util Printf QCheck QCheck_alcotest
