test/test_bounds.ml: Alcotest Gcs_core List Printf
