test/test_replicate.ml: Alcotest Gcs_core Gcs_graph List String
