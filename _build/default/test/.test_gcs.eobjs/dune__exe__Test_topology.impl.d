test/test_topology.ml: Alcotest Array Gcs_graph Gcs_util List QCheck QCheck_alcotest
