test/test_adversary.ml: Alcotest Float Gcs_adversary Gcs_core Gcs_graph List
