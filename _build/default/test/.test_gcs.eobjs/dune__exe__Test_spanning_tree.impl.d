test/test_spanning_tree.ml: Alcotest Array Gcs_graph Gcs_util QCheck QCheck_alcotest
