test/test_prng.ml: Alcotest Array Float Gcs_util QCheck QCheck_alcotest
