test/test_delay_model.ml: Alcotest Gcs_sim Gcs_util List QCheck QCheck_alcotest
