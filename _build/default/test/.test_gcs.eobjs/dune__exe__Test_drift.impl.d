test/test_drift.ml: Alcotest Gcs_clock Gcs_util List QCheck QCheck_alcotest
