test/test_adversarial_random.ml: Gcs_clock Gcs_core Gcs_graph Gcs_sim Gcs_util Hashtbl List QCheck QCheck_alcotest
