module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Registry = Gcs_core.Registry
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Stabilize = Gcs_core.Stabilize
module Bounds = Gcs_core.Bounds

let spec = Spec.make ()

let run_wrapped ?(graph = Topology.line 12) ?(horizon = 400.) ?(warmup = 300.)
    ?monitor_period ?threshold ~init () =
  let wrapped, stats =
    Stabilize.wrap ?monitor_period ?threshold
      ~inner:(Registry.get Algorithm.Gradient_sync) ()
  in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:wrapped
      ~initial_value_of_node:init ~horizon ~warmup ~seed:21 graph
  in
  (Runner.run cfg, stats)

let test_quiet_when_in_spec () =
  (* Well-initialized system: the monitor must never fire a reset. *)
  let r, stats = run_wrapped ~init:(fun _ -> 0.) () in
  Alcotest.(check int) "no resets" 0 stats.Stabilize.resets;
  Alcotest.(check bool) "rounds ran" true (stats.Stabilize.rounds_completed >= 2);
  Alcotest.(check bool) "skew normal" true
    (r.Runner.summary.Metrics.max_global
    <= Bounds.gradient_global_upper spec ~diameter:11)

let test_estimate_tracks_truth () =
  (* The monitor's estimate must be within O(depth * error) of the true
     global skew of an in-spec run. *)
  let _, stats = run_wrapped ~init:(fun _ -> 0.) () in
  let slack =
    float_of_int 11 *. Spec.estimate_error_bound spec *. 2.
  in
  Alcotest.(check bool) "estimate sane" true
    (stats.Stabilize.last_estimate >= 0.
    && stats.Stabilize.last_estimate
       <= Bounds.gradient_global_upper spec ~diameter:11 +. slack)

let test_detects_and_recovers_from_wild_state () =
  let r, stats =
    run_wrapped ~init:(fun v -> if v = 5 then 1e6 else 0.) ()
  in
  Alcotest.(check bool) "reset fired" true (stats.Stabilize.resets >= 1);
  Alcotest.(check bool) "recovered" true
    (r.Runner.summary.Metrics.final_global < 100.);
  Alcotest.(check bool) "resets are jumps" true
    (r.Runner.jumps.Gcs_clock.Logical_clock.count > 0)

let test_recovery_much_faster_than_slew () =
  (* Bare gradient would need skew / mu = 1e6 / 0.1 = 1e7 time; the wrapper
     must fix it within one monitor period plus a traversal. *)
  let r, _ = run_wrapped ~init:(fun v -> if v = 0 then 0. else 1e6) () in
  Alcotest.(check bool) "fast recovery" true
    (r.Runner.summary.Metrics.final_global < 100.)

let test_custom_threshold_respected () =
  (* An absurdly high threshold must suppress resets even for bad states. *)
  let _, stats =
    run_wrapped ~threshold:1e9 ~init:(fun v -> if v = 3 then 1e6 else 0.) ()
  in
  Alcotest.(check int) "suppressed" 0 stats.Stabilize.resets

let test_works_on_nonline_topologies () =
  List.iter
    (fun graph ->
      let r, stats =
        run_wrapped ~graph ~init:(fun v -> if v = 2 then 5e4 else 0.) ()
      in
      Alcotest.(check bool) "reset fired" true (stats.Stabilize.resets >= 1);
      Alcotest.(check bool) "recovered" true
        (r.Runner.summary.Metrics.final_global < 100.))
    [ Topology.ring 10; Topology.grid ~rows:3 ~cols:4; Topology.star 8 ]

let test_default_threshold_positive () =
  Alcotest.(check bool) "positive" true
    (Stabilize.default_threshold spec ~diameter:16 > 0.);
  Alcotest.(check bool) "above global envelope" true
    (Stabilize.default_threshold spec ~diameter:16
    > Bounds.gradient_global_upper spec ~diameter:16)

let test_wrapped_name () =
  let wrapped, _ =
    Stabilize.wrap ~inner:(Registry.get Algorithm.Gradient_sync) ()
  in
  Alcotest.(check string) "name" "stabilized-gradient" wrapped.Algorithm.name

let suite =
  [
    Alcotest.test_case "quiet when in spec" `Quick test_quiet_when_in_spec;
    Alcotest.test_case "estimate tracks truth" `Quick test_estimate_tracks_truth;
    Alcotest.test_case "detects wild state" `Quick test_detects_and_recovers_from_wild_state;
    Alcotest.test_case "recovery beats slew" `Quick test_recovery_much_faster_than_slew;
    Alcotest.test_case "custom threshold" `Quick test_custom_threshold_respected;
    Alcotest.test_case "non-line topologies" `Quick test_works_on_nonline_topologies;
    Alcotest.test_case "default threshold" `Quick test_default_threshold_positive;
    Alcotest.test_case "wrapped name" `Quick test_wrapped_name;
  ]
