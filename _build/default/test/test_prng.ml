module Prng = Gcs_util.Prng

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  let draws g = Array.init 32 (fun _ -> Prng.int g 1_000_000) in
  check "different seeds differ" true (draws a <> draws b)

let test_split_independence () =
  let parent = Prng.create ~seed:7 in
  let c1 = Prng.split parent in
  let c2 = Prng.split parent in
  let draws g = Array.init 32 (fun _ -> Prng.int g 1_000_000) in
  check "siblings differ" true (draws c1 <> draws c2)

let test_split_reproducible () =
  let mk () =
    let parent = Prng.create ~seed:99 in
    let kids = Prng.split_n parent 4 in
    Array.map (fun g -> Prng.int g 1_000_000) kids
  in
  Alcotest.(check (array int)) "replayed children" (mk ()) (mk ())

let test_uniform_range =
  QCheck.Test.make ~name:"uniform stays in [lo, hi]" ~count:500
    QCheck.(pair (float_bound_exclusive 100.) (float_bound_exclusive 100.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let g = Prng.create ~seed:(int_of_float (a *. 1000.) lxor 13) in
      let x = Prng.uniform g ~lo ~hi in
      x >= lo && x <= hi)

let test_int_range =
  QCheck.Test.make ~name:"int stays in [0, bound)" ~count:500
    QCheck.(int_range 1 1_000_000)
    (fun bound ->
      let g = Prng.create ~seed:bound in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let test_gaussian_moments () =
  let g = Prng.create ~seed:5 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Prng.gaussian g ~mu:3. ~sigma:2.) in
  let mean = Gcs_util.Stats.mean xs in
  let sd = Gcs_util.Stats.stddev xs in
  check "mean near 3" true (Float.abs (mean -. 3.) < 0.1);
  check "stddev near 2" true (Float.abs (sd -. 2.) < 0.1)

let test_exponential_mean () =
  let g = Prng.create ~seed:6 in
  let xs = Array.init 20_000 (fun _ -> Prng.exponential g ~rate:2.) in
  let mean = Gcs_util.Stats.mean xs in
  check "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.05)

let test_shuffle_permutation () =
  let g = Prng.create ~seed:11 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Prng.shuffle g b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" a sorted

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "split reproducible" `Quick test_split_reproducible;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest test_uniform_range;
    QCheck_alcotest.to_alcotest test_int_range;
  ]
