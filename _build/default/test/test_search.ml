module Search = Gcs_adversary.Search
module Fan_lynch = Gcs_adversary.Fan_lynch
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Bounds = Gcs_core.Bounds

let spec = Spec.make ()

let small_cfg ?(algo = Algorithm.Gradient_sync) ?(beam = 4) ?(segments = 3) () =
  Search.default_config ~spec ~algo ~segments ~beam ~n:5 ~seed:83 ()

let test_move_alphabet () =
  Alcotest.(check int) "nine moves" 9 (List.length Search.all_moves);
  let distinct = List.sort_uniq compare Search.all_moves in
  Alcotest.(check int) "all distinct" 9 (List.length distinct)

let test_config_validation () =
  (match Search.default_config ~n:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted n=1");
  (match Search.default_config ~segments:0 ~n:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted 0 segments");
  match Search.default_config ~beam:0 ~n:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted 0 beam"

let test_evaluate_deterministic () =
  let cfg = small_cfg () in
  let plan =
    [
      { Search.fast_side = `Left; bias = `Forward };
      { Search.fast_side = `Left; bias = `Forward };
    ]
  in
  Alcotest.(check bool) "same plan, same score" true
    (Search.evaluate cfg plan = Search.evaluate cfg plan)

let test_neutral_plan_is_tame () =
  (* All-neutral moves = no adversary: skew stays near the benign level. *)
  let cfg = small_cfg () in
  let neutral = { Search.fast_side = `None; bias = `Neutral } in
  let local, _ = Search.evaluate cfg [ neutral; neutral; neutral ] in
  Alcotest.(check bool) "tame" true (local < 2. *. spec.Spec.kappa)

let test_search_beats_neutral () =
  let cfg = small_cfg () in
  let neutral = { Search.fast_side = `None; bias = `Neutral } in
  let neutral_local, _ =
    Search.evaluate cfg [ neutral; neutral; neutral ]
  in
  let o = Search.search cfg in
  Alcotest.(check bool) "found something worse than doing nothing" true
    (o.Search.forced_local > neutral_local);
  Alcotest.(check int) "plan has requested length" 3
    (List.length o.Search.plan)

let test_wider_beam_never_worse () =
  let narrow = Search.search (small_cfg ~beam:1 ()) in
  let wide = Search.search (small_cfg ~beam:6 ()) in
  Alcotest.(check bool) "monotone in beam" true
    (wide.Search.forced_local >= narrow.Search.forced_local -. 1e-9)

let test_search_respects_gradient_envelope () =
  (* Even the searched worst case cannot break the analytic bound. *)
  let o = Search.search (small_cfg ~beam:6 ()) in
  Alcotest.(check bool) "under envelope" true
    (o.Search.forced_local <= Bounds.gradient_local_upper spec ~diameter:4)

let test_evaluation_count_reported () =
  let cfg = small_cfg ~beam:2 ~segments:2 () in
  let o = Search.search cfg in
  (* depth 1: 1 * 9; depth 2: 2 * 9 -> 27 evaluations. *)
  Alcotest.(check int) "evaluations" 27 o.Search.evaluations

let suite =
  [
    Alcotest.test_case "move alphabet" `Quick test_move_alphabet;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "evaluate deterministic" `Quick test_evaluate_deterministic;
    Alcotest.test_case "neutral tame" `Quick test_neutral_plan_is_tame;
    Alcotest.test_case "search beats neutral" `Quick test_search_beats_neutral;
    Alcotest.test_case "beam monotone" `Quick test_wider_beam_never_worse;
    Alcotest.test_case "respects envelope" `Quick test_search_respects_gradient_envelope;
    Alcotest.test_case "evaluation count" `Quick test_evaluation_count_reported;
  ]
