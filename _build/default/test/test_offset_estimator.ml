module Oe = Gcs_core.Offset_estimator

let checkf = Alcotest.(check (float 1e-9))

let test_empty () =
  let e = Oe.create () in
  Alcotest.(check bool) "no estimate" true (Oe.remote_estimate e ~h_local:0. = None);
  Alcotest.(check bool) "no offset" true
    (Oe.offset e ~h_local:0. ~own_value:5. = None);
  Alcotest.(check bool) "no beacon" true (Oe.last_beacon e = None)

let test_anchor_and_extrapolate () =
  let e = Oe.create () in
  Oe.update e ~h_local:10. ~remote_value:100. ~elapsed_guess:1.;
  (match Oe.remote_estimate e ~h_local:10. with
  | Some v -> checkf "at anchor" 101. v
  | None -> Alcotest.fail "expected estimate");
  match Oe.remote_estimate e ~h_local:14. with
  | Some v -> checkf "extrapolated at own rate" 105. v
  | None -> Alcotest.fail "expected estimate"

let test_offset_sign () =
  let e = Oe.create () in
  Oe.update e ~h_local:0. ~remote_value:10. ~elapsed_guess:0.;
  (* own = 13, remote estimated at 10: we are ahead by 3 *)
  match Oe.offset e ~h_local:0. ~own_value:13. with
  | Some o -> checkf "positive when ahead" 3. o
  | None -> Alcotest.fail "expected offset"

let test_update_replaces () =
  let e = Oe.create () in
  Oe.update e ~h_local:0. ~remote_value:10. ~elapsed_guess:0.;
  Oe.update e ~h_local:5. ~remote_value:50. ~elapsed_guess:0.5;
  (match Oe.last_beacon e with
  | Some h -> checkf "last beacon time" 5. h
  | None -> Alcotest.fail "expected beacon");
  match Oe.remote_estimate e ~h_local:5. with
  | Some v -> checkf "fresh anchor wins" 50.5 v
  | None -> Alcotest.fail "expected estimate"

let prop_estimate_error_bounded =
  (* Simulate a remote clock with drift and a delay inside [d_min, d_max]:
     the estimate error must stay within u/2 + drift contributions, the
     bound the spec promises. *)
  QCheck.Test.make ~name:"estimate error within model bound" ~count:300
    QCheck.(
      quad (float_range 0. 1.) (* delay position within the band *)
        (float_range 0.9999 1.0101) (* remote rate in [1, 1.01] (approx) *)
        (float_range 0. 2.) (* elapsed local time since beacon *)
        (float_range 0. 100.) (* remote clock value at send *))
    (fun (pos, remote_rate, elapsed, remote_at_send) ->
      let remote_rate = Float.max 1. (Float.min 1.01 remote_rate) in
      let d_min = 0.5 and d_max = 1.5 in
      let delay = d_min +. (pos *. (d_max -. d_min)) in
      let guess = 0.5 *. (d_min +. d_max) in
      let e = Oe.create () in
      (* Local hardware runs at rate 1 for simplicity. *)
      Oe.update e ~h_local:delay ~remote_value:remote_at_send
        ~elapsed_guess:guess;
      let h_query = delay +. elapsed in
      let true_remote = remote_at_send +. (remote_rate *. (delay +. elapsed)) in
      match Oe.remote_estimate e ~h_local:h_query with
      | None -> false
      | Some est ->
          let u = d_max -. d_min in
          let rho = 0.01 in
          let bound = (u /. 2.) +. (rho *. (delay +. elapsed)) +. 1e-9 in
          Float.abs (est -. true_remote) <= bound)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "anchor and extrapolate" `Quick test_anchor_and_extrapolate;
    Alcotest.test_case "offset sign" `Quick test_offset_sign;
    Alcotest.test_case "update replaces" `Quick test_update_replaces;
    QCheck_alcotest.to_alcotest prop_estimate_error_bounded;
  ]
