module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Tree = Gcs_graph.Spanning_tree
module Sp = Gcs_graph.Shortest_path
module Prng = Gcs_util.Prng

let test_line_tree () =
  let g = Topology.line 5 in
  let t = Tree.bfs_tree g ~root:0 in
  Alcotest.(check int) "root parent is itself" 0 t.Tree.parent.(0);
  Alcotest.(check (array int)) "parents" [| 0; 0; 1; 2; 3 |] t.Tree.parent;
  Alcotest.(check (array int)) "depths" [| 0; 1; 2; 3; 4 |] t.Tree.depth;
  Alcotest.(check int) "height" 4 (Tree.height t)

let test_order_topdown () =
  let g = Topology.binary_tree ~depth:2 in
  let t = Tree.bfs_tree g ~root:0 in
  Alcotest.(check int) "first is root" 0 t.Tree.order.(0);
  (* Each node appears after its parent. *)
  let pos = Array.make (Graph.n g) (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) t.Tree.order;
  Array.iteri
    (fun v p -> if v <> p then Alcotest.(check bool) "parent first" true (pos.(p) < pos.(v)))
    t.Tree.parent

let test_children_inverse_of_parent () =
  let g = Topology.grid ~rows:3 ~cols:3 in
  let t = Tree.bfs_tree g ~root:4 in
  Array.iteri
    (fun p kids ->
      Array.iter
        (fun c -> Alcotest.(check int) "child's parent" p t.Tree.parent.(c))
        kids)
    t.Tree.children

let test_disconnected_rejected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Spanning_tree.bfs_tree: disconnected graph") (fun () ->
      ignore (Tree.bfs_tree g ~root:0))

let test_is_tree_edge () =
  let g = Topology.ring 4 in
  let t = Tree.bfs_tree g ~root:0 in
  Alcotest.(check bool) "0-1 tree edge" true (Tree.is_tree_edge t 0 1);
  (* The ring has exactly one non-tree edge. *)
  let non_tree =
    Graph.fold_edges
      (fun _ u v acc -> if Tree.is_tree_edge t u v then acc else acc + 1)
      g 0
  in
  Alcotest.(check int) "one non-tree edge" 1 non_tree

let test_path_to_root () =
  let g = Topology.line 4 in
  let t = Tree.bfs_tree g ~root:0 in
  Alcotest.(check (list int)) "path from leaf" [ 3; 2; 1; 0 ]
    (Tree.path_to_root t 3);
  Alcotest.(check (list int)) "path from root" [ 0 ] (Tree.path_to_root t 0)

let prop_depth_is_bfs_distance =
  QCheck.Test.make ~name:"tree depth = BFS hop distance" ~count:50
    QCheck.(int_range 2 30)
    (fun n ->
      let rng = Prng.create ~seed:(n * 7) in
      let g = Topology.random_gnp ~n ~p:0.3 ~rng in
      let t = Tree.bfs_tree g ~root:0 in
      let d = Sp.bfs g ~src:0 in
      Array.for_all2 (fun depth dist -> depth = dist) t.Tree.depth d)

let prop_tree_has_n_minus_1_edges =
  QCheck.Test.make ~name:"tree has n-1 parent links" ~count:50
    QCheck.(int_range 2 30)
    (fun n ->
      let rng = Prng.create ~seed:(n * 13) in
      let g = Topology.random_gnp ~n ~p:0.3 ~rng in
      let t = Tree.bfs_tree g ~root:0 in
      let links = ref 0 in
      Array.iteri (fun v p -> if v <> p then incr links) t.Tree.parent;
      !links = n - 1)

let suite =
  [
    Alcotest.test_case "line tree" `Quick test_line_tree;
    Alcotest.test_case "order top-down" `Quick test_order_topdown;
    Alcotest.test_case "children inverse" `Quick test_children_inverse_of_parent;
    Alcotest.test_case "disconnected" `Quick test_disconnected_rejected;
    Alcotest.test_case "is_tree_edge" `Quick test_is_tree_edge;
    Alcotest.test_case "path_to_root" `Quick test_path_to_root;
    QCheck_alcotest.to_alcotest prop_depth_is_bfs_distance;
    QCheck_alcotest.to_alcotest prop_tree_has_n_minus_1_edges;
  ]
