(* Cross-feature integration: the extensions composed with each other and
   with the fault injectors, mirroring how a deployment would combine them. *)

module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Registry = Gcs_core.Registry
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Stabilize = Gcs_core.Stabilize
module External_sync = Gcs_core.External_sync
module Gh = Gcs_core.Gradient_hetero
module Dm = Gcs_sim.Delay_model

let spec = Spec.make ()

let test_stabilize_under_loss () =
  (* 20% message loss must not deadlock the monitor: rounds that lose a
     report are abandoned and the next round starts fresh. *)
  let wrapped, stats =
    Stabilize.wrap ~inner:(Registry.get Algorithm.Gradient_sync) ()
  in
  let r =
    Runner.run
      (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:wrapped
         ~loss:(Runner.Uniform_loss 0.2)
         ~initial_value_of_node:(fun v -> if v = 3 then 1e5 else 0.)
         ~horizon:800. ~warmup:700. ~seed:51 (Topology.line 10))
  in
  Alcotest.(check bool) "some round completed" true
    (stats.Stabilize.rounds_completed >= 1);
  Alcotest.(check bool) "still recovered" true
    (r.Runner.summary.Metrics.final_global < 100.)

let test_external_under_churn () =
  (* Anchored network with 20% link churn: real-time tracking survives
     because anchors read their references locally (no messages needed) and
     gradient beacons are soft state. *)
  let anchors v = if v mod 4 = 0 then Some External_sync.perfect_reference else None in
  let algo = External_sync.algorithm ~anchors in
  let graph = Topology.ring 16 in
  let windows_rng = Gcs_util.Prng.create ~seed:53 in
  let per_edge =
    Array.init 16 (fun _ ->
        Gcs_adversary.Churn.windows ~duty:0.2 ~mean_down:8. ~horizon:1200.
          ~rng:(Gcs_util.Prng.split windows_rng))
  in
  let loss ~edge ~src:_ ~dst:_ ~now =
    let down =
      Array.exists
        (fun (a, b) -> now >= a && now < b)
        per_edge.(edge mod Array.length per_edge)
    in
    if down then 1. else 0.
  in
  let r =
    Runner.run
      (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:algo
         ~loss:(Runner.Custom_loss loss) ~horizon:1200. ~seed:53 graph)
  in
  let rt =
    Array.fold_left
      (fun acc (s : Metrics.sample) ->
        if s.Metrics.time >= 600. then
          Float.max acc
            (Metrics.real_time_skew ~time:s.Metrics.time s.Metrics.values)
        else acc)
      0. r.Runner.samples
  in
  Alcotest.(check bool)
    (Printf.sprintf "tracks real time under churn (%.2f)" rt)
    true (rt < 10.)

let test_hetero_under_bias () =
  (* The per-edge algorithm on a biased ring: still bounded (its quanta are
     at least as protective as the uniform algorithm's). *)
  let graph = Topology.ring 16 in
  let edge_bounds _ = spec.Spec.delay in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~override:(Gh.algorithm ~edge_bounds)
      ~delay_kind:Runner.Controlled_delays ~horizon:500. ~warmup:0. ~seed:55
      graph
  in
  let live = Runner.prepare cfg in
  let b = spec.Spec.delay in
  live.Runner.chooser :=
    Some
      (fun ~edge:_ ~src ~dst ~now:_ ->
        if (src + 1) mod 16 = dst then b.Dm.d_max else b.Dm.d_min);
  let r = Runner.complete live in
  let envelope = Gcs_core.Bounds.gradient_local_upper spec ~diameter:8 in
  Alcotest.(check bool) "bounded under bias" true
    (r.Runner.summary.Metrics.max_local <= envelope)

let test_stabilized_tree_sync () =
  (* The wrapper is algorithm-agnostic: it must also heal tree-based sync. *)
  let wrapped, stats =
    Stabilize.wrap ~inner:(Registry.get Algorithm.Tree_sync) ()
  in
  let r =
    Runner.run
      (Runner.config ~spec ~algo:Algorithm.Tree_sync ~override:wrapped
         ~initial_value_of_node:(fun v -> if v = 2 then 1e5 else 0.)
         ~horizon:500. ~warmup:400. ~seed:57 (Topology.line 8))
  in
  Alcotest.(check bool) "reset fired" true (stats.Stabilize.resets >= 1);
  Alcotest.(check bool) "healed" true
    (r.Runner.summary.Metrics.final_global < 100.)

let test_determinism_spans_features () =
  (* Loss + stabilization + adversarial init, run twice: identical. *)
  let run () =
    let wrapped, _ =
      Stabilize.wrap ~inner:(Registry.get Algorithm.Gradient_sync) ()
    in
    let r =
      Runner.run
        (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:wrapped
           ~loss:(Runner.Uniform_loss 0.3)
           ~initial_value_of_node:(fun v -> float_of_int (v * v))
           ~horizon:300. ~seed:59 (Topology.grid ~rows:3 ~cols:3))
    in
    (r.Runner.summary, r.Runner.messages, r.Runner.dropped)
  in
  Alcotest.(check bool) "bitwise replay" true (run () = run ())

let suite =
  [
    Alcotest.test_case "stabilize under loss" `Quick test_stabilize_under_loss;
    Alcotest.test_case "external under churn" `Quick test_external_under_churn;
    Alcotest.test_case "hetero under bias" `Quick test_hetero_under_bias;
    Alcotest.test_case "stabilized tree sync" `Quick test_stabilized_tree_sync;
    Alcotest.test_case "determinism across features" `Quick test_determinism_spans_features;
  ]
