module Hc = Gcs_clock.Hardware_clock
module Lc = Gcs_clock.Logical_clock

let checkf = Alcotest.(check (float 1e-9))

let make ?(rate = 1.) ?(mult = 1.) ?(value = 0.) () =
  let hw = Hc.create ~t0:0. ~rate () in
  (hw, Lc.create ~hardware:hw ~now:0. ~value ~mult)

let test_follows_hardware () =
  let _, lc = make ~rate:1.5 () in
  checkf "value tracks rate * t" 15. (Lc.value lc ~now:10.)

let test_multiplier () =
  let _, lc = make ~rate:1. ~mult:2. () in
  checkf "mult doubles" 20. (Lc.value lc ~now:10.);
  checkf "rate" 2. (Lc.rate lc ~now:10.)

let test_set_mult_continuous () =
  let _, lc = make () in
  let before = Lc.value lc ~now:10. in
  Lc.set_mult lc ~now:10. 1.1;
  checkf "no jump at set_mult" before (Lc.value lc ~now:10.);
  checkf "new slope" (before +. 1.1) (Lc.value lc ~now:11.)

let test_jump () =
  let _, lc = make () in
  Lc.jump_to lc ~now:5. 100.;
  checkf "jumped" 100. (Lc.value lc ~now:5.);
  checkf "continues from jump" 101. (Lc.value lc ~now:6.)

let test_advance () =
  let _, lc = make () in
  Lc.advance lc ~now:5. 3.;
  checkf "advanced" 8. (Lc.value lc ~now:5.)

let test_jump_stats () =
  let _, lc = make () in
  let s0 = Lc.jump_stats lc in
  Alcotest.(check int) "no jumps initially" 0 s0.Lc.count;
  Lc.jump_to lc ~now:1. 10.;
  (* value at 1 was 1, so magnitude 9 *)
  Lc.advance lc ~now:2. (-2.);
  let s = Lc.jump_stats lc in
  Alcotest.(check int) "two jumps" 2 s.Lc.count;
  checkf "total magnitude" 11. s.Lc.total_magnitude;
  checkf "max magnitude" 9. s.Lc.max_magnitude

let test_set_mult_is_not_a_jump () =
  let _, lc = make () in
  Lc.set_mult lc ~now:3. 1.2;
  Lc.set_mult lc ~now:4. 1.;
  Alcotest.(check int) "slews are not jumps" 0 (Lc.jump_stats lc).Lc.count

let test_rejects_time_travel () =
  let _, lc = make () in
  Lc.set_mult lc ~now:10. 1.5;
  Alcotest.check_raises "query before action"
    (Invalid_argument "Logical_clock.value: time precedes last control action")
    (fun () -> ignore (Lc.value lc ~now:9.))

let test_rejects_bad_mult () =
  let _, lc = make () in
  Alcotest.check_raises "zero mult"
    (Invalid_argument "Logical_clock.set_mult: mult must be > 0") (fun () ->
      Lc.set_mult lc ~now:1. 0.)

let test_hardware_rate_changes_propagate () =
  let hw, lc = make () in
  Lc.set_mult lc ~now:0. 2.;
  Hc.set_rate hw ~now:10. ~rate:1.5;
  (* 0..10 at 1 * 2 = 20, 10..20 at 1.5 * 2 = 30 *)
  checkf "piecewise product" 50. (Lc.value lc ~now:20.)

let prop_rate_envelope =
  QCheck.Test.make
    ~name:"logical growth within [mult_min, mult_max * max_rate] envelope"
    ~count:200
    QCheck.(triple (float_range 1. 1.02) (float_range 1. 1.1) (float_range 0.1 50.))
    (fun (hw_rate, mult, dt) ->
      let _, lc = make ~rate:hw_rate ~mult () in
      let v1 = Lc.value lc ~now:10. in
      let v2 = Lc.value lc ~now:(10. +. dt) in
      let growth = v2 -. v1 in
      growth >= dt -. 1e-9 && growth <= (1.1 *. 1.02 *. dt) +. 1e-9)

let prop_monotone_between_actions =
  QCheck.Test.make ~name:"logical clock increases between control actions"
    ~count:200
    QCheck.(pair (float_range 0.01 10.) (float_range 0.01 10.))
    (fun (t1, dt) ->
      let _, lc = make ~rate:1.01 ~mult:1.05 () in
      Lc.value lc ~now:(t1 +. dt) > Lc.value lc ~now:t1)

let suite =
  [
    Alcotest.test_case "follows hardware" `Quick test_follows_hardware;
    Alcotest.test_case "multiplier" `Quick test_multiplier;
    Alcotest.test_case "set_mult continuous" `Quick test_set_mult_continuous;
    Alcotest.test_case "jump" `Quick test_jump;
    Alcotest.test_case "advance" `Quick test_advance;
    Alcotest.test_case "jump stats" `Quick test_jump_stats;
    Alcotest.test_case "slew not jump" `Quick test_set_mult_is_not_a_jump;
    Alcotest.test_case "rejects time travel" `Quick test_rejects_time_travel;
    Alcotest.test_case "rejects bad mult" `Quick test_rejects_bad_mult;
    Alcotest.test_case "hardware propagates" `Quick test_hardware_rate_changes_propagate;
    QCheck_alcotest.to_alcotest prop_rate_envelope;
    QCheck_alcotest.to_alcotest prop_monotone_between_actions;
  ]
