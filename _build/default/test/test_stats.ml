module Stats = Gcs_util.Stats

let checkf = Alcotest.(check (float 1e-9))

let test_mean () =
  checkf "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Stats.mean [||]))

let test_variance () =
  checkf "variance of constant" 0. (Stats.variance [| 5.; 5.; 5. |]);
  checkf "variance of singleton" 0. (Stats.variance [| 5. |])

let test_variance_value () =
  (* mean 3.2, squared deviations sum 14.8, n-1 denominator: 14.8 / 4 *)
  checkf "sample variance exact" 3.7 (Stats.variance [| 1.; 2.; 3.; 4.; 6. |])

let test_minmax () =
  checkf "min" (-2.) (Stats.min [| 3.; -2.; 7. |]);
  checkf "max" 7. (Stats.max [| 3.; -2.; 7. |])

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  checkf "p0" 10. (Stats.percentile xs 0.);
  checkf "p100" 40. (Stats.percentile xs 100.);
  checkf "p50 interpolates" 25. (Stats.percentile xs 50.);
  checkf "median alias" 25. (Stats.median xs)

let test_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  let _ = Stats.percentile xs 50. in
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] xs

let test_running_matches_batch =
  QCheck.Test.make ~name:"running accumulator matches batch stats" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let a = Array.of_list xs in
      let r = Stats.Running.create () in
      Array.iter (Stats.Running.add r) a;
      let close x y = Float.abs (x -. y) < 1e-6 *. (1. +. Float.abs x) in
      close (Stats.Running.mean r) (Stats.mean a)
      && close (Stats.Running.variance r) (Stats.variance a)
      && Stats.Running.min r = Stats.min a
      && Stats.Running.max r = Stats.max a
      && Stats.Running.count r = Array.length a)

let test_linear_fit () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = [| 1.; 3.; 5.; 7. |] in
  let slope, intercept = Stats.linear_fit xs ys in
  checkf "slope" 2. slope;
  checkf "intercept" 1. intercept

let test_linear_fit_flat () =
  let xs = [| 1.; 1.; 1. |] and ys = [| 2.; 3.; 4. |] in
  let slope, _ = Stats.linear_fit xs ys in
  checkf "degenerate x gives zero slope" 0. slope

let test_log2 () = checkf "log2 8" 3. (Stats.log2 8.)

let test_running_empty () =
  let r = Stats.Running.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Running.mean r));
  Alcotest.(check bool) "min nan" true (Float.is_nan (Stats.Running.min r));
  Alcotest.(check bool) "max nan" true (Float.is_nan (Stats.Running.max r));
  checkf "variance zero" 0. (Stats.Running.variance r)

let test_percentile_singleton () =
  checkf "p50 of one" 7. (Stats.percentile [| 7. |] 50.)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance zero" `Quick test_variance;
    Alcotest.test_case "variance exact" `Quick test_variance_value;
    Alcotest.test_case "min/max" `Quick test_minmax;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile pure" `Quick test_percentile_does_not_mutate;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    Alcotest.test_case "linear fit degenerate" `Quick test_linear_fit_flat;
    Alcotest.test_case "log2" `Quick test_log2;
    Alcotest.test_case "running empty" `Quick test_running_empty;
    Alcotest.test_case "percentile singleton" `Quick test_percentile_singleton;
    QCheck_alcotest.to_alcotest test_running_matches_batch;
  ]
