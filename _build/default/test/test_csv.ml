module Csv = Gcs_util.Csv

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_cell "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape_cell "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape_cell "a\nb")

let test_render () =
  let out =
    Csv.render ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4,5" ] ]
  in
  Alcotest.(check string) "rfc shape" "x,y\n1,2\n3,\"4,5\"\n" out

let test_write_roundtrip () =
  let path = Filename.temp_file "gcs_csv" ".csv" in
  Csv.write ~path ~header:[ "a" ] ~rows:[ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file content" "a\n1\n2\n" content

let suite =
  [
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "write roundtrip" `Quick test_write_roundtrip;
  ]
