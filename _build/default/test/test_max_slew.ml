module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Lc = Gcs_clock.Logical_clock
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics

let spec = Spec.make ()

let run ?(horizon = 300.) ?(drift = fun _ -> Drift.Random_constant)
    ?(init = fun _ -> 0.) graph =
  Runner.run
    (Runner.config ~spec ~algo:Algorithm.Max_slew_sync ~drift_of_node:drift
       ~initial_value_of_node:init ~horizon ~seed:15 graph)

let test_never_jumps () =
  let r = run (Topology.ring 8) in
  Alcotest.(check int) "no jumps" 0 r.Runner.jumps.Lc.count

let test_rate_envelope () =
  let r = run (Topology.ring 8) in
  let samples = r.Runner.samples in
  let lo = 1. and hi = (1. +. spec.Spec.mu) *. Spec.vartheta spec in
  let ok = ref true in
  for i = 1 to Array.length samples - 1 do
    let dt = samples.(i).Metrics.time -. samples.(i - 1).Metrics.time in
    if dt > 0. then
      Array.iteri
        (fun v x ->
          let rate = (x -. samples.(i - 1).Metrics.values.(v)) /. dt in
          if rate < lo -. 1e-6 || rate > hi +. 1e-6 then ok := false)
        samples.(i).Metrics.values
  done;
  Alcotest.(check bool) "rates within [1, (1+mu)*vartheta]" true !ok

let test_catches_up_a_laggard () =
  (* One node starts 20 behind: it must close most of the gap within
     20 / mu + slack time by racing at 1 + mu. *)
  let graph = Topology.line 4 in
  let r =
    run ~horizon:400. ~init:(fun v -> if v = 3 then -20. else 0.) graph
  in
  Alcotest.(check bool) "laggard caught up" true
    (r.Runner.summary.Metrics.final_global < 3.)

let test_chases_the_fastest () =
  (* With one fast node, everyone must track it: global skew stays bounded
     instead of growing at rho * t. *)
  let graph = Topology.line 6 in
  let drift v = if v = 0 then Drift.Extreme_high else Drift.Extreme_low in
  let r = run ~horizon:2000. ~drift graph in
  Alcotest.(check bool) "bounded while chasing" true
    (r.Runner.summary.Metrics.max_global < 0.2 *. (0.01 *. 2000.))

let test_greed_vs_gradient_blocking () =
  (* The structural difference: start a ramp with a deep laggard at one
     end. Max-slew races every node toward the max immediately; the
     gradient algorithm makes nodes adjacent to the laggard wait (blocking).
     Both recover, but max-slew must finish recovering no later. *)
  let graph = Topology.line 8 in
  let init v = -3. *. spec.Spec.kappa *. float_of_int v in
  let recovery_time algo =
    let r =
      Runner.run
        (Runner.config ~spec ~algo ~initial_value_of_node:init ~horizon:600.
           ~warmup:0. ~seed:15 graph)
    in
    let target = spec.Spec.kappa *. 2. in
    let rec first_below i =
      if i >= Array.length r.Runner.samples then infinity
      else begin
        let s = r.Runner.samples.(i) in
        if Metrics.global_skew s.Metrics.values < target then s.Metrics.time
        else first_below (i + 1)
      end
    in
    first_below 0
  in
  let t_slew = recovery_time Algorithm.Max_slew_sync in
  let t_grad = recovery_time Algorithm.Gradient_sync in
  Alcotest.(check bool)
    (Printf.sprintf "max-slew (%.0f) not slower than gradient (%.0f)" t_slew
       t_grad)
    true
    (t_slew <= t_grad +. 1.)

let suite =
  [
    Alcotest.test_case "never jumps" `Quick test_never_jumps;
    Alcotest.test_case "rate envelope" `Quick test_rate_envelope;
    Alcotest.test_case "catches up laggard" `Quick test_catches_up_a_laggard;
    Alcotest.test_case "chases fastest" `Quick test_chases_the_fastest;
    Alcotest.test_case "greed vs blocking" `Quick test_greed_vs_gradient_blocking;
  ]
