module Bounds = Gcs_core.Bounds
module Spec = Gcs_core.Spec

let test_fan_lynch_zero_small () =
  Alcotest.(check (float 0.)) "D=1" 0. (Bounds.fan_lynch_lower ~u:1. ~diameter:1);
  Alcotest.(check (float 0.)) "D=0" 0. (Bounds.fan_lynch_lower ~u:1. ~diameter:0)

let test_fan_lynch_monotone_in_d () =
  let b d = Bounds.fan_lynch_lower ~u:1. ~diameter:d in
  Alcotest.(check bool) "grows 8 -> 64" true (b 64 > b 8);
  Alcotest.(check bool) "grows 64 -> 4096" true (b 4096 > b 64)

let test_fan_lynch_linear_in_u () =
  let b u = Bounds.fan_lynch_lower ~u ~diameter:100 in
  Alcotest.(check (float 1e-9)) "scales with u" (2. *. b 1.) (b 2.)

let test_fan_lynch_sublinear () =
  (* The bound must grow much slower than D. *)
  let b d = Bounds.fan_lynch_lower ~u:1. ~diameter:d in
  Alcotest.(check bool) "sublinear" true (b 1024 /. b 32 < 1024. /. 32. /. 4.)

let test_gradient_upper_monotone () =
  let spec = Spec.make () in
  let g d = Bounds.gradient_local_upper spec ~diameter:d in
  Alcotest.(check bool) "monotone" true (g 100 >= g 10);
  Alcotest.(check bool) "positive at D=1" true (g 1 > 0.)

let test_gradient_upper_logarithmic () =
  let spec = Spec.make () in
  let g d = Bounds.gradient_local_upper spec ~diameter:d in
  (* Squaring the diameter adds one log-factor's worth, far from doubling. *)
  Alcotest.(check bool) "log-like growth" true (g 10_000 < 2. *. g 100)

let test_gradient_upper_exceeds_lower () =
  let spec = Spec.make () in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "envelope above theorem line at D=%d" d)
        true
        (Bounds.gradient_local_upper spec ~diameter:d
        >= Bounds.fan_lynch_lower ~u:(Spec.uncertainty spec) ~diameter:d))
    [ 2; 8; 32; 128; 512 ]

let test_global_bounds_linear () =
  let spec = Spec.make () in
  let g d = Bounds.gradient_global_upper spec ~diameter:d in
  let m d = Bounds.max_sync_global_upper spec ~diameter:d in
  Alcotest.(check bool) "gradient global linear-ish" true
    (g 200 > 1.8 *. g 100 && g 200 < 2.2 *. g 100);
  Alcotest.(check bool) "max global linear-ish" true
    (m 200 > 1.5 *. m 100 && m 200 < 2.5 *. m 100)

let test_free_run () =
  let spec = Spec.make ~rho:0.02 () in
  Alcotest.(check (float 1e-9)) "rho * horizon" 2.
    (Bounds.free_run_global spec ~horizon:100.)

let suite =
  [
    Alcotest.test_case "fan-lynch small D" `Quick test_fan_lynch_zero_small;
    Alcotest.test_case "fan-lynch monotone" `Quick test_fan_lynch_monotone_in_d;
    Alcotest.test_case "fan-lynch linear in u" `Quick test_fan_lynch_linear_in_u;
    Alcotest.test_case "fan-lynch sublinear" `Quick test_fan_lynch_sublinear;
    Alcotest.test_case "gradient upper monotone" `Quick test_gradient_upper_monotone;
    Alcotest.test_case "gradient upper log" `Quick test_gradient_upper_logarithmic;
    Alcotest.test_case "upper above lower" `Quick test_gradient_upper_exceeds_lower;
    Alcotest.test_case "global bounds linear" `Quick test_global_bounds_linear;
    Alcotest.test_case "free run" `Quick test_free_run;
  ]
