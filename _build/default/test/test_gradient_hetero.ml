module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Gh = Gcs_core.Gradient_hetero
module Gs = Gcs_core.Gradient_sync
module Dm = Gcs_sim.Delay_model

let fast = Gh.fast_trigger_hetero

let check = Alcotest.(check bool)

let test_empty () = check "no neighbors" false (fast ~kappas:[||] ~offsets:[||])

let test_uniform_kappas_match_homogeneous =
  QCheck.Test.make
    ~name:"hetero trigger with equal kappas = homogeneous trigger" ~count:1000
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-10.) 10.))
    (fun offsets ->
      let o = Array.of_list offsets in
      let k = Array.make (Array.length o) 1.5 in
      fast ~kappas:k ~offsets:o = Gs.fast_trigger ~kappa:1.5 ~offsets:o)

let test_per_edge_scaling () =
  (* A neighbor ahead by 2 across a kappa=1 edge triggers; the same gap
     across a kappa=3 edge does not. *)
  check "tight edge triggers" true (fast ~kappas:[| 1. |] ~offsets:[| -2. |]);
  check "loose edge tolerates" false (fast ~kappas:[| 3. |] ~offsets:[| -2. |])

let test_loose_laggard_does_not_block () =
  (* Ahead by 2 on a kappa=1 edge; behind by 2 on a kappa=3 edge: the
     laggard is within its own edge's tolerance, so level 0 holds. *)
  check "loose laggard within tolerance" true
    (fast ~kappas:[| 1.; 3. |] ~offsets:[| -2.; 2. |])

let test_tight_laggard_blocks () =
  (* Same gaps but the laggard sits on a tight edge: level 0 blocked
     (behind 2 > kappa 1) and level 1 needs ahead >= 3 kappa = 3. *)
  check "tight laggard blocks" false
    (fast ~kappas:[| 1.; 1. |] ~offsets:[| -2.; 2. |])

let line_with_bad_edge ~bad_u =
  let graph = Topology.line 9 in
  let bad_edge = 4 in
  let edge_bounds e =
    if e = bad_edge then Dm.bounds ~d_min:0.1 ~d_max:(0.1 +. bad_u)
    else Dm.bounds ~d_min:0.9 ~d_max:1.1
  in
  (graph, bad_edge, edge_bounds)

let run_hetero ~bad_u =
  let graph, bad_edge, edge_bounds = line_with_bad_edge ~bad_u in
  let spec = Spec.make ~d_min:0.1 ~d_max:(0.1 +. bad_u) ~beacon_period:2. () in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~override:(Gh.algorithm ~edge_bounds)
      ~delay_kind:(Runner.Per_edge_delays edge_bounds) ~horizon:500. ~seed:39
      graph
  in
  let r = Runner.run cfg in
  let worst_good = ref 0. and worst_bad = ref 0. in
  Array.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.time >= cfg.Runner.warmup then
        Array.iteri
          (fun e x ->
            if e = bad_edge then worst_bad := Float.max !worst_bad x
            else worst_good := Float.max !worst_good x)
          (Metrics.local_skew_edges graph s.Metrics.values))
    r.Runner.samples;
  (!worst_good, !worst_bad)

let test_good_edges_insulated () =
  (* Good-edge skew must not grow when the bad edge gets worse. *)
  let good_1, _ = run_hetero ~bad_u:1. in
  let good_4, _ = run_hetero ~bad_u:4. in
  check
    (Printf.sprintf "insulated (%.3f vs %.3f)" good_1 good_4)
    true
    (good_4 < 2. *. good_1 +. 0.2)

let test_bad_edge_cost_localized () =
  let good, bad = run_hetero ~bad_u:4. in
  check "bad edge pays more than good edges" true (bad > good);
  (* ... but still bounded by its own kappa-scale budget. *)
  let bad_kappa = Spec.default_kappa ~u:4. ~rho:0.01 ~beacon_period:2. in
  check "bad edge within its own budget" true (bad < 2. *. bad_kappa)

let test_runs_on_any_topology () =
  let graph = Topology.grid ~rows:3 ~cols:3 in
  let edge_bounds _ = Dm.bounds ~d_min:0.5 ~d_max:1.5 in
  let cfg =
    Runner.config ~spec:(Spec.make ()) ~algo:Algorithm.Gradient_sync
      ~override:(Gh.algorithm ~edge_bounds)
      ~delay_kind:(Runner.Per_edge_delays edge_bounds) ~horizon:200. ~seed:41
      graph
  in
  let r = Runner.run cfg in
  check "sane skew" true (r.Runner.summary.Metrics.max_local < 10.)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "per-edge scaling" `Quick test_per_edge_scaling;
    Alcotest.test_case "loose laggard" `Quick test_loose_laggard_does_not_block;
    Alcotest.test_case "tight laggard" `Quick test_tight_laggard_blocks;
    Alcotest.test_case "good edges insulated" `Quick test_good_edges_insulated;
    Alcotest.test_case "bad edge localized" `Quick test_bad_edge_cost_localized;
    Alcotest.test_case "any topology" `Quick test_runs_on_any_topology;
    QCheck_alcotest.to_alcotest test_uniform_kappas_match_homogeneous;
  ]
