(* Property-based adversarial testing: random adversaries drawn from the
   model's full power set (arbitrary rate schedules within [1, 1+rho] and
   arbitrary delay choosers within [d_min, d_max]) must never push the
   gradient algorithm past its analytic envelope, and must never break the
   model's output requirements for any algorithm. This is the qcheck
   complement to the hand-crafted attacks in gcs_adversary. *)

module Topology = Gcs_graph.Topology
module Engine = Gcs_sim.Engine
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Bounds = Gcs_core.Bounds
module Metrics = Gcs_core.Metrics
module Invariant = Gcs_core.Invariant
module Prng = Gcs_util.Prng
module Dm = Gcs_sim.Delay_model
module Drift = Gcs_clock.Drift

let spec = Spec.make ()

(* One random adversary = a seed. It derives a rate schedule (random rate
   per node re-drawn every [rate_step]) and a delay chooser (random but
   deterministic per (edge, direction, time bucket)). *)
let run_random_adversary ~algo ~seed =
  let n = 9 in
  let graph = Topology.line n in
  let horizon = 250. in
  let cfg =
    Runner.config ~spec ~algo
      ~drift_of_node:(fun _ -> Drift.Constant 1.)
      ~delay_kind:Runner.Controlled_delays ~horizon ~warmup:(horizon /. 2.)
      ~seed graph
  in
  let live = Runner.prepare cfg in
  let adv_rng = Prng.create ~seed:(seed lxor 0xADF) in
  let b = spec.Spec.delay in
  (* Deterministic pseudo-random delay per (edge, direction, 1-unit time
     bucket) so the chooser is a function, as the model requires. *)
  let hash_delay ~edge ~src ~dst ~now =
    let bucket = int_of_float now in
    let h = Hashtbl.hash (edge, src, dst, bucket, seed) in
    let frac = float_of_int (h land 0xFFFF) /. 65535. in
    b.Dm.d_min +. (frac *. (b.Dm.d_max -. b.Dm.d_min))
  in
  live.Runner.chooser := Some (fun ~edge ~src ~dst ~now -> hash_delay ~edge ~src ~dst ~now);
  (* Random rate reassignments every 10 time units. *)
  let rate_step = 10. in
  let rec schedule_rates at =
    if at < horizon then begin
      Engine.schedule_control live.Runner.engine ~at (fun () ->
          for v = 0 to n - 1 do
            let rate = Prng.uniform adv_rng ~lo:1. ~hi:(Spec.vartheta spec) in
            Engine.set_node_rate live.Runner.engine ~node:v ~rate
          done);
      schedule_rates (at +. rate_step)
    end
  in
  schedule_rates 0.;
  Runner.complete live

let prop_gradient_envelope_holds =
  QCheck.Test.make ~name:"gradient local skew <= envelope vs random adversaries"
    ~count:25 QCheck.small_nat
    (fun seed ->
      let r = run_random_adversary ~algo:Algorithm.Gradient_sync ~seed in
      r.Runner.summary.Metrics.max_local
      <= Bounds.gradient_local_upper spec ~diameter:8)

let prop_output_requirements_hold =
  QCheck.Test.make
    ~name:"every algorithm meets its output requirements vs random adversaries"
    ~count:10 QCheck.small_nat
    (fun seed ->
      List.for_all
        (fun algo ->
          let r = run_random_adversary ~algo ~seed in
          Invariant.check_result r ~algo = [])
        Algorithm.all_kinds)

let prop_global_skew_within_context_bound =
  QCheck.Test.make
    ~name:"gradient global skew <= envelope vs random adversaries" ~count:25
    QCheck.small_nat
    (fun seed ->
      let r = run_random_adversary ~algo:Algorithm.Gradient_sync ~seed in
      r.Runner.summary.Metrics.max_global
      <= Bounds.gradient_global_upper spec ~diameter:8)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_gradient_envelope_holds;
    QCheck_alcotest.to_alcotest prop_output_requirements_hold;
    QCheck_alcotest.to_alcotest prop_global_skew_within_context_bound;
  ]
