module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Churn = Gcs_adversary.Churn
module Prng = Gcs_util.Prng

let spec = Spec.make ()

let test_windows_disjoint_sorted =
  QCheck.Test.make ~name:"churn windows are sorted, disjoint, in-horizon"
    ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Prng.create ~seed in
      let ws = Churn.windows ~duty:0.3 ~mean_down:5. ~horizon:200. ~rng in
      let ok = ref true in
      Array.iteri
        (fun i (start, stop) ->
          if start >= stop || start < 0. || stop > 200. then ok := false;
          if i > 0 && start < snd ws.(i - 1) then ok := false)
        ws;
      !ok)

let test_windows_zero_duty () =
  let rng = Prng.create ~seed:1 in
  Alcotest.(check int) "no windows" 0
    (Array.length (Churn.windows ~duty:0. ~mean_down:5. ~horizon:100. ~rng))

let test_windows_duty_fraction () =
  (* Long-run down fraction should approximate the duty parameter. *)
  let rng = Prng.create ~seed:3 in
  let ws = Churn.windows ~duty:0.3 ~mean_down:10. ~horizon:100_000. ~rng in
  let down =
    Array.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0. ws
  in
  let fraction = down /. 100_000. in
  Alcotest.(check bool)
    (Printf.sprintf "fraction %.3f near 0.3" fraction)
    true
    (Float.abs (fraction -. 0.3) < 0.05)

let test_config_validation () =
  let graph = Topology.ring 6 in
  (match Churn.default_config ~duty:1.0 ~graph () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted duty = 1");
  match Churn.default_config ~mean_down:0. ~graph () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero mean_down"

let test_realized_drop_rate_tracks_duty () =
  let graph = Topology.ring 16 in
  let r = Churn.run (Churn.default_config ~duty:0.25 ~graph ~seed:5 ()) in
  Alcotest.(check bool)
    (Printf.sprintf "drop rate %.3f near duty" r.Churn.downtime_fraction)
    true
    (Float.abs (r.Churn.downtime_fraction -. 0.25) < 0.08)

let test_graceful_degradation () =
  (* Gradient sync under 30% churn must stay within a small factor of its
     loss-free skew — soft state coasts through outages. *)
  let graph = Topology.ring 16 in
  let quiet = Churn.run (Churn.default_config ~duty:0. ~graph ~seed:7 ()) in
  let noisy = Churn.run (Churn.default_config ~duty:0.3 ~graph ~seed:7 ()) in
  Alcotest.(check bool) "degrades gracefully" true
    (noisy.Churn.forced_local < 2.5 *. quiet.Churn.forced_local)

let test_uniform_loss_in_runner () =
  let graph = Topology.ring 10 in
  let run loss =
    Runner.run
      (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~loss ~horizon:200.
         ~seed:9 graph)
  in
  let none = run Runner.No_loss in
  let half = run (Runner.Uniform_loss 0.5) in
  let all = run (Runner.Uniform_loss 1.0) in
  Alcotest.(check int) "no loss drops nothing" 0 none.Runner.dropped;
  Alcotest.(check bool) "half loss drops about half" true
    (let f =
       float_of_int half.Runner.dropped /. float_of_int half.Runner.messages
     in
     Float.abs (f -. 0.5) < 0.1);
  Alcotest.(check int) "total loss delivers nothing"
    all.Runner.messages all.Runner.dropped

let test_total_loss_equals_free_run () =
  (* With every message dropped, the gradient algorithm can never see a
     neighbor: behaviour must degrade to free-running clocks. *)
  let graph = Topology.ring 10 in
  let run ~algo ~loss =
    (Runner.run
       (Runner.config ~spec ~algo ~loss ~horizon:300. ~seed:11 graph))
      .Runner.summary
  in
  let deaf = run ~algo:Algorithm.Gradient_sync ~loss:(Runner.Uniform_loss 1.0) in
  let free = run ~algo:Algorithm.Free_run ~loss:Runner.No_loss in
  Alcotest.(check (float 1e-9)) "same skew as free-run"
    free.Metrics.max_global deaf.Metrics.max_global

let test_loss_validation () =
  let graph = Topology.ring 6 in
  match Runner.config ~loss:(Runner.Uniform_loss 1.5) graph with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted loss > 1"

let suite =
  [
    Alcotest.test_case "windows zero duty" `Quick test_windows_zero_duty;
    Alcotest.test_case "windows duty fraction" `Quick test_windows_duty_fraction;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "drop rate tracks duty" `Quick test_realized_drop_rate_tracks_duty;
    Alcotest.test_case "graceful degradation" `Quick test_graceful_degradation;
    Alcotest.test_case "uniform loss" `Quick test_uniform_loss_in_runner;
    Alcotest.test_case "total loss = free run" `Quick test_total_loss_equals_free_run;
    Alcotest.test_case "loss validation" `Quick test_loss_validation;
    QCheck_alcotest.to_alcotest test_windows_disjoint_sorted;
  ]
