(* Integration tests: full simulations of each algorithm on small instances,
   asserting the invariants the algorithms are supposed to deliver. These
   run the entire stack — topology, drift schedules, delay models, engine,
   estimators, triggers, metrics. *)

module Topology = Gcs_graph.Topology
module Sp = Gcs_graph.Shortest_path
module Drift = Gcs_clock.Drift
module Lc = Gcs_clock.Logical_clock
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds

let spec = Spec.make ()

let run ?(spec = spec) ?(horizon = 300.) ?(seed = 3) ~algo graph =
  Runner.run (Runner.config ~spec ~algo ~horizon ~seed graph)

let check = Alcotest.(check bool)

let test_free_run_drifts () =
  (* Extreme drift split: skew must accumulate at about rho * t. *)
  let graph = Topology.line 2 in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Free_run
      ~drift_of_node:(fun v -> if v = 0 then Drift.Extreme_high else Drift.Extreme_low)
      ~horizon:100. ~warmup:0. ~seed:1 graph
  in
  let r = Runner.run cfg in
  let expected = spec.Spec.rho *. 100. in
  check "drift accumulates"
    (Float.abs (r.Runner.summary.Metrics.final_global -. expected) < 0.05)
    true

let test_free_run_sends_nothing () =
  let r = run ~algo:Algorithm.Free_run (Topology.ring 5) in
  Alcotest.(check int) "no messages" 0 r.Runner.messages

let test_max_sync_never_decreases () =
  (* Sample consecutive values; with Max_sync every node's clock must be
     non-decreasing even though it jumps. *)
  let r = run ~algo:Algorithm.Max_sync (Topology.ring 8) in
  let samples = r.Runner.samples in
  let ok = ref true in
  for i = 1 to Array.length samples - 1 do
    let prev = samples.(i - 1).Metrics.values in
    let cur = samples.(i).Metrics.values in
    Array.iteri (fun v x -> if x < prev.(v) -. 1e-9 then ok := false) cur
  done;
  check "monotone" true !ok

let test_max_sync_bounded_global () =
  let graph = Topology.line 9 in
  let r = run ~algo:Algorithm.Max_sync graph in
  let bound = Bounds.max_sync_global_upper spec ~diameter:8 in
  check "global under analytic envelope"
    (r.Runner.summary.Metrics.max_global <= bound)
    true

let test_max_sync_uses_jumps () =
  let r = run ~algo:Algorithm.Max_sync (Topology.ring 6) in
  check "jump-based algorithm jumps" true (r.Runner.jumps.Lc.count > 0)

let test_slew_algorithms_never_jump () =
  List.iter
    (fun algo ->
      let r = run ~algo (Topology.ring 6) in
      Alcotest.(check int)
        (Algorithm.kind_name algo ^ " never jumps")
        0 r.Runner.jumps.Lc.count)
    [ Algorithm.Free_run; Algorithm.Tree_sync; Algorithm.Gradient_sync ]

let test_tree_sync_converges_on_tree () =
  (* On a tree topology every edge is a tree edge: local skew must settle
     near the estimate-error threshold. *)
  let graph = Topology.binary_tree ~depth:3 in
  let r = run ~algo:Algorithm.Tree_sync ~horizon:400. graph in
  let threshold = Spec.estimate_error_bound spec in
  check "tree-edge skew small"
    (r.Runner.summary.Metrics.final_local <= (3. *. threshold) +. 0.2)
    true

let test_gradient_local_under_envelope () =
  List.iter
    (fun graph ->
      let d = Sp.diameter graph in
      let r = run ~algo:Algorithm.Gradient_sync graph in
      let bound = Bounds.gradient_local_upper spec ~diameter:d in
      check
        (Printf.sprintf "local <= envelope (D=%d)" d)
        (r.Runner.summary.Metrics.max_local <= bound)
        true)
    [ Topology.line 9; Topology.ring 10; Topology.grid ~rows:4 ~cols:4 ]

let test_gradient_global_under_envelope () =
  let graph = Topology.line 9 in
  let r = run ~algo:Algorithm.Gradient_sync graph in
  let bound = Bounds.gradient_global_upper spec ~diameter:8 in
  check "global <= envelope" (r.Runner.summary.Metrics.max_global <= bound) true

let test_gradient_beats_free_run () =
  (* With adversarially split drift, free-run diverges linearly in time
     while the gradient algorithm caps skew. *)
  let graph = Topology.line 6 in
  let horizon = 2000. in
  let drift v = if v < 3 then Drift.Extreme_high else Drift.Extreme_low in
  let result algo =
    Runner.run
      (Runner.config ~spec ~algo ~drift_of_node:drift ~horizon ~seed:2 graph)
  in
  let free = result Algorithm.Free_run in
  let grad = result Algorithm.Gradient_sync in
  check "free-run diverges"
    (free.Runner.summary.Metrics.max_global > 10.)
    true;
  check "gradient holds the line"
    (grad.Runner.summary.Metrics.max_global
    < free.Runner.summary.Metrics.max_global /. 2.)
    true

let test_gradient_rate_envelope () =
  (* Between consecutive samples, every logical clock must advance at a
     rate within [1, (1 + mu) * vartheta]. *)
  let r = run ~algo:Algorithm.Gradient_sync (Topology.ring 6) in
  let samples = r.Runner.samples in
  let lo = 1. and hi = (1. +. spec.Spec.mu) *. Spec.vartheta spec in
  let ok = ref true in
  for i = 1 to Array.length samples - 1 do
    let dt = samples.(i).Metrics.time -. samples.(i - 1).Metrics.time in
    if dt > 0. then
      Array.iteri
        (fun v x ->
          let rate = (x -. samples.(i - 1).Metrics.values.(v)) /. dt in
          if rate < lo -. 1e-6 || rate > hi +. 1e-6 then ok := false)
        samples.(i).Metrics.values
  done;
  check "rates in [1, (1+mu)*vartheta]" true !ok

let test_initial_values_respected () =
  let graph = Topology.line 3 in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Free_run
      ~initial_value_of_node:(fun v -> float_of_int v *. 10.)
      ~horizon:10. ~warmup:0. ~seed:1 graph
  in
  let r = Runner.run cfg in
  let first = r.Runner.samples.(0).Metrics.values in
  Alcotest.(check (float 1e-9)) "node 2 initial" 20. first.(2)

let test_gradient_recovers_from_bad_init () =
  (* Adversarial initialization (the self-stabilization angle): a ramp of
     2 kappa per hop must be flattened back under the envelope. *)
  let graph = Topology.line 6 in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~initial_value_of_node:(fun v -> float_of_int v *. 2. *. spec.Spec.kappa)
      ~horizon:800. ~warmup:600. ~seed:4 graph
  in
  let r = Runner.run cfg in
  let bound = Bounds.gradient_local_upper spec ~diameter:5 in
  check "recovered" (r.Runner.summary.Metrics.max_local <= bound) true

let suite =
  [
    Alcotest.test_case "free-run drifts" `Quick test_free_run_drifts;
    Alcotest.test_case "free-run silent" `Quick test_free_run_sends_nothing;
    Alcotest.test_case "max monotone" `Quick test_max_sync_never_decreases;
    Alcotest.test_case "max global bounded" `Quick test_max_sync_bounded_global;
    Alcotest.test_case "max jumps" `Quick test_max_sync_uses_jumps;
    Alcotest.test_case "slew algos never jump" `Quick test_slew_algorithms_never_jump;
    Alcotest.test_case "tree converges on tree" `Quick test_tree_sync_converges_on_tree;
    Alcotest.test_case "gradient local envelope" `Quick test_gradient_local_under_envelope;
    Alcotest.test_case "gradient global envelope" `Quick test_gradient_global_under_envelope;
    Alcotest.test_case "gradient beats free-run" `Quick test_gradient_beats_free_run;
    Alcotest.test_case "gradient rate envelope" `Quick test_gradient_rate_envelope;
    Alcotest.test_case "initial values" `Quick test_initial_values_respected;
    Alcotest.test_case "recovers from bad init" `Quick test_gradient_recovers_from_bad_init;
  ]
