module Hc = Gcs_clock.Hardware_clock
module Prng = Gcs_util.Prng

let checkf = Alcotest.(check (float 1e-9))

let test_constant_rate () =
  let c = Hc.create ~t0:0. ~rate:2. () in
  checkf "value at start" 0. (Hc.value c ~now:0.);
  checkf "value later" 20. (Hc.value c ~now:10.);
  checkf "rate" 2. (Hc.rate_at c ~now:5.)

let test_initial_value () =
  let c = Hc.create ~h0:100. ~t0:5. ~rate:1. () in
  checkf "offset start" 100. (Hc.value c ~now:5.);
  checkf "offset later" 103. (Hc.value c ~now:8.)

let test_rate_change () =
  let c = Hc.create ~t0:0. ~rate:1. () in
  Hc.set_rate c ~now:10. ~rate:2.;
  checkf "before change" 5. (Hc.value c ~now:5.);
  checkf "at change" 10. (Hc.value c ~now:10.);
  checkf "after change" 30. (Hc.value c ~now:20.);
  checkf "old segment still queryable" 7. (Hc.value c ~now:7.)

let test_rate_replace_at_breakpoint () =
  let c = Hc.create ~t0:0. ~rate:1. () in
  Hc.set_rate c ~now:10. ~rate:2.;
  Hc.set_rate c ~now:10. ~rate:3.;
  checkf "replaced rate" 3. (Hc.rate_at c ~now:15.);
  checkf "value uses replaced rate" 40. (Hc.value c ~now:20.)

let test_inverse_roundtrip () =
  let c = Hc.create ~t0:1. ~rate:1. () in
  Hc.set_rate c ~now:5. ~rate:0.5;
  Hc.set_rate c ~now:9. ~rate:3.;
  List.iter
    (fun t ->
      let h = Hc.value c ~now:t in
      checkf (Printf.sprintf "inverse at %g" t) t (Hc.inverse c ~h))
    [ 1.; 2.; 5.; 7.; 9.; 12.; 100. ]

let test_rejects_past_breakpoint () =
  let c = Hc.create ~t0:0. ~rate:1. () in
  Hc.set_rate c ~now:10. ~rate:2.;
  Alcotest.check_raises "past breakpoint"
    (Invalid_argument "Hardware_clock.set_rate: breakpoint in the past")
    (fun () -> Hc.set_rate c ~now:5. ~rate:1.)

let test_rejects_bad_rate () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Hardware_clock.create: rate must be > 0") (fun () ->
      ignore (Hc.create ~t0:0. ~rate:0. ()));
  let c = Hc.create ~t0:0. ~rate:1. () in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Hardware_clock.set_rate: rate must be > 0") (fun () ->
      Hc.set_rate c ~now:1. ~rate:(-1.))

let test_rejects_prehistory () =
  let c = Hc.create ~t0:10. ~rate:1. () in
  Alcotest.check_raises "value before start"
    (Invalid_argument "Hardware_clock.value: time before clock start")
    (fun () -> ignore (Hc.value c ~now:9.));
  Alcotest.check_raises "inverse before start"
    (Invalid_argument "Hardware_clock.inverse: value before clock start")
    (fun () -> ignore (Hc.inverse c ~h:(-1.)))

let test_breakpoints_listing () =
  let c = Hc.create ~t0:0. ~rate:1. () in
  Hc.set_rate c ~now:3. ~rate:2.;
  match Hc.breakpoints c with
  | [ (0., 0., 1.); (3., 3., 2.) ] -> ()
  | other ->
      Alcotest.failf "unexpected breakpoints (%d entries)" (List.length other)

let random_clock seed =
  let rng = Prng.create ~seed in
  let c = Hc.create ~t0:0. ~rate:(Prng.uniform rng ~lo:0.5 ~hi:2.) () in
  let t = ref 0. in
  for _ = 1 to 20 do
    t := !t +. Prng.uniform rng ~lo:0.1 ~hi:5.;
    Hc.set_rate c ~now:!t ~rate:(Prng.uniform rng ~lo:0.5 ~hi:2.)
  done;
  c

let prop_monotone =
  QCheck.Test.make ~name:"clock values are strictly increasing" ~count:100
    QCheck.(pair small_nat (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (seed, (a, b)) ->
      let c = random_clock seed in
      let t1 = Float.min a b and t2 = Float.max a b in
      QCheck.assume (t2 > t1);
      Hc.value c ~now:t2 > Hc.value c ~now:t1)

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse (value t) = t on random clocks" ~count:100
    QCheck.(pair small_nat (float_range 0. 200.))
    (fun (seed, t) ->
      let c = random_clock seed in
      let h = Hc.value c ~now:t in
      Float.abs (Hc.inverse c ~h -. t) < 1e-6)

let prop_rate_bounds_hold =
  QCheck.Test.make ~name:"growth bounded by min/max segment rates" ~count:100
    QCheck.(pair small_nat (pair (float_range 0. 100.) (float_range 0.01 50.)))
    (fun (seed, (t1, dt)) ->
      let c = random_clock seed in
      let t2 = t1 +. dt in
      let dh = Hc.value c ~now:t2 -. Hc.value c ~now:t1 in
      (* random_clock uses rates in [0.5, 2] *)
      dh >= (0.5 *. dt) -. 1e-9 && dh <= (2. *. dt) +. 1e-9)

let suite =
  [
    Alcotest.test_case "constant rate" `Quick test_constant_rate;
    Alcotest.test_case "initial value" `Quick test_initial_value;
    Alcotest.test_case "rate change" `Quick test_rate_change;
    Alcotest.test_case "replace at breakpoint" `Quick test_rate_replace_at_breakpoint;
    Alcotest.test_case "inverse roundtrip" `Quick test_inverse_roundtrip;
    Alcotest.test_case "rejects past breakpoint" `Quick test_rejects_past_breakpoint;
    Alcotest.test_case "rejects bad rate" `Quick test_rejects_bad_rate;
    Alcotest.test_case "rejects prehistory" `Quick test_rejects_prehistory;
    Alcotest.test_case "breakpoints listing" `Quick test_breakpoints_listing;
    QCheck_alcotest.to_alcotest prop_monotone;
    QCheck_alcotest.to_alcotest prop_inverse_roundtrip;
    QCheck_alcotest.to_alcotest prop_rate_bounds_hold;
  ]
