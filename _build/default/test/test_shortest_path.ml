module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Sp = Gcs_graph.Shortest_path
module Prng = Gcs_util.Prng

let test_bfs_line () =
  let g = Topology.line 5 in
  Alcotest.(check (array int)) "distances from 0" [| 0; 1; 2; 3; 4 |]
    (Sp.bfs g ~src:0);
  Alcotest.(check (array int)) "distances from middle" [| 2; 1; 0; 1; 2 |]
    (Sp.bfs g ~src:2)

let test_bfs_unreachable () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  let d = Sp.bfs g ~src:0 in
  Alcotest.(check int) "unreachable is max_int" max_int d.(2)

let test_diameter_families () =
  Alcotest.(check int) "line" 9 (Sp.diameter (Topology.line 10));
  Alcotest.(check int) "ring even" 5 (Sp.diameter (Topology.ring 10));
  Alcotest.(check int) "ring odd" 4 (Sp.diameter (Topology.ring 9));
  Alcotest.(check int) "star" 2 (Sp.diameter (Topology.star 5))

let test_diameter_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Shortest_path: disconnected graph") (fun () ->
      ignore (Sp.diameter g))

let test_dijkstra_weighted () =
  (* square with a shortcut: 0-1 (1.0), 1-2 (1.0), 0-2 (1.5) *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let weights = [| 1.0; 1.0; 1.5 |] in
  let d = Sp.dijkstra g ~weights ~src:0 in
  Alcotest.(check (float 1e-9)) "direct shortcut wins" 1.5 d.(2);
  let weights' = [| 1.0; 1.0; 2.5 |] in
  let d' = Sp.dijkstra g ~weights:weights' ~src:0 in
  Alcotest.(check (float 1e-9)) "two hops win" 2.0 d'.(2)

let test_dijkstra_rejects_negative () =
  let g = Topology.line 3 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Shortest_path.dijkstra: negative weight") (fun () ->
      ignore (Sp.dijkstra g ~weights:[| 1.; -1. |] ~src:0))

let test_bellman_ford_negative_cycle () =
  let arcs = [| (0, 1, 1.); (1, 2, -3.); (2, 0, 1.) |] in
  (match Sp.bellman_ford ~n:3 ~arcs ~src:0 with
  | Error () -> ()
  | Ok _ -> Alcotest.fail "missed negative cycle");
  let arcs_ok = [| (0, 1, 1.); (1, 2, -0.5); (2, 0, 1.) |] in
  match Sp.bellman_ford ~n:3 ~arcs:arcs_ok ~src:0 with
  | Ok d -> Alcotest.(check (float 1e-9)) "dist via neg edge" 0.5 d.(2)
  | Error () -> Alcotest.fail "false negative cycle"

let test_bellman_ford_matches_dijkstra =
  QCheck.Test.make ~name:"bellman-ford = dijkstra on non-negative weights"
    ~count:50
    QCheck.(int_range 3 25)
    (fun n ->
      let rng = Prng.create ~seed:n in
      let g = Topology.random_gnp ~n ~p:0.3 ~rng in
      let weights =
        Array.init (Graph.m g) (fun _ -> Prng.uniform rng ~lo:0.1 ~hi:5.)
      in
      let arcs =
        Array.concat
          (List.map
             (fun (id, (u, v)) -> [| (u, v, weights.(id)); (v, u, weights.(id)) |])
             (List.mapi (fun i e -> (i, e)) (Array.to_list (Graph.edges g))))
      in
      let dj = Sp.dijkstra g ~weights ~src:0 in
      match Sp.bellman_ford ~n ~arcs ~src:0 with
      | Error () -> false
      | Ok bf ->
          Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) dj bf)

let test_bfs_matches_floyd_warshall =
  QCheck.Test.make ~name:"bfs all-pairs = floyd-warshall with unit weights"
    ~count:50
    QCheck.(int_range 2 20)
    (fun n ->
      let rng = Prng.create ~seed:(n * 31) in
      let g = Topology.random_gnp ~n ~p:0.35 ~rng in
      let unit_weights = Array.make (Graph.m g) 1. in
      let fw = Sp.floyd_warshall g ~weights:unit_weights in
      let ap = Sp.all_pairs g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let bfs_d = ap.(i).(j) in
          let fw_d = fw.(i).(j) in
          if bfs_d = max_int then ok := !ok && not (Float.is_finite fw_d)
          else ok := !ok && Float.abs (fw_d -. float_of_int bfs_d) < 1e-9
        done
      done;
      !ok)

let test_triangle_inequality =
  QCheck.Test.make ~name:"hop distances satisfy the triangle inequality"
    ~count:50
    QCheck.(int_range 3 20)
    (fun n ->
      let rng = Prng.create ~seed:(n * 17) in
      let g = Topology.random_gnp ~n ~p:0.4 ~rng in
      let ap = Sp.all_pairs g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if ap.(i).(j) < max_int && ap.(j).(k) < max_int then
              ok := !ok && ap.(i).(k) <= ap.(i).(j) + ap.(j).(k)
          done
        done
      done;
      !ok)

let test_eccentricity () =
  let g = Topology.line 5 in
  Alcotest.(check int) "endpoint" 4 (Sp.eccentricity g 0);
  Alcotest.(check int) "center" 2 (Sp.eccentricity g 2)

let test_weighted_diameter () =
  let g = Topology.line 3 in
  let wd = Sp.weighted_diameter g ~weights:[| 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "weighted diameter" 5. wd

let suite =
  [
    Alcotest.test_case "bfs line" `Quick test_bfs_line;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "diameters" `Quick test_diameter_families;
    Alcotest.test_case "diameter disconnected" `Quick test_diameter_disconnected;
    Alcotest.test_case "dijkstra" `Quick test_dijkstra_weighted;
    Alcotest.test_case "dijkstra negative" `Quick test_dijkstra_rejects_negative;
    Alcotest.test_case "bellman-ford cycle" `Quick test_bellman_ford_negative_cycle;
    Alcotest.test_case "weighted diameter" `Quick test_weighted_diameter;
    Alcotest.test_case "eccentricity" `Quick test_eccentricity;
    QCheck_alcotest.to_alcotest test_bellman_ford_matches_dijkstra;
    QCheck_alcotest.to_alcotest test_bfs_matches_floyd_warshall;
    QCheck_alcotest.to_alcotest test_triangle_inequality;
  ]
