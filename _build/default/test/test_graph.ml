module Graph = Gcs_graph.Graph

let test_basic_construction () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1);
  Alcotest.(check bool) "mem_edge" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "mem_edge symmetric" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "non-edge" false (Graph.mem_edge g 0 2)

let test_rejects_self_loop () =
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (1, 1) ]))

let test_rejects_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.of_edges: duplicate edge") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 1); (1, 0) ]))

let test_rejects_out_of_range () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_ports_roundtrip () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  for p = 0 to Graph.degree g 0 - 1 do
    let w = Graph.neighbor_at_port g 0 p in
    Alcotest.(check int) "port_of_neighbor inverts neighbor_at_port" p
      (Graph.port_of_neighbor g 0 w)
  done

let test_port_of_missing_neighbor () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  Alcotest.check_raises "not adjacent" Not_found (fun () ->
      ignore (Graph.port_of_neighbor g 0 2))

let test_edge_ids_consistent () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Array.iteri
    (fun id (u, v) ->
      Alcotest.(check (pair int int)) "edge_endpoints" (u, v)
        (Graph.edge_endpoints g id);
      let p = Graph.port_of_neighbor g u v in
      Alcotest.(check int) "edge_at_port matches id" id
        (Graph.edge_at_port g u p))
    (Graph.edges g)

let test_connectivity () =
  let connected = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let disconnected = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "connected" true (Graph.is_connected connected);
  Alcotest.(check bool) "disconnected" false (Graph.is_connected disconnected)

let test_fold_edges () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let count = Graph.fold_edges (fun _ _ _ acc -> acc + 1) g 0 in
  Alcotest.(check int) "fold visits all edges" 3 count

let prop_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2m" ~count:100
    QCheck.(int_range 2 30)
    (fun n ->
      let rng = Gcs_util.Prng.create ~seed:n in
      let g = Gcs_graph.Topology.random_gnp ~n ~p:0.3 ~rng in
      let total = ref 0 in
      for v = 0 to n - 1 do
        total := !total + Graph.degree g v
      done;
      !total = 2 * Graph.m g)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_basic_construction;
    Alcotest.test_case "rejects self-loop" `Quick test_rejects_self_loop;
    Alcotest.test_case "rejects duplicate" `Quick test_rejects_duplicate;
    Alcotest.test_case "rejects out-of-range" `Quick test_rejects_out_of_range;
    Alcotest.test_case "ports roundtrip" `Quick test_ports_roundtrip;
    Alcotest.test_case "missing neighbor" `Quick test_port_of_missing_neighbor;
    Alcotest.test_case "edge ids" `Quick test_edge_ids_consistent;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "fold_edges" `Quick test_fold_edges;
    QCheck_alcotest.to_alcotest prop_degree_sum;
  ]
