module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds
module Runner = Gcs_core.Runner
module Topology = Gcs_graph.Topology
module Fan_lynch = Gcs_adversary.Fan_lynch
module Linear = Gcs_adversary.Linear
module Bias = Gcs_adversary.Bias

let spec = Spec.make ()

let test_fan_lynch_config_defaults () =
  let cfg = Fan_lynch.default_config ~n:64 () in
  Alcotest.(check int) "shrink = ceil(log2 n)" 6 cfg.Fan_lynch.shrink;
  Alcotest.(check bool) "phases planned" true (cfg.Fan_lynch.n = 64)

let test_fan_lynch_rejects_bad_input () =
  (match Fan_lynch.default_config ~n:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted n=1");
  match Fan_lynch.default_config ~shrink:1 ~n:8 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted shrink=1"

let test_fan_lynch_forces_at_least_theorem_line () =
  (* The executable adversary must force at least the theorem's bound on
     every implemented algorithm (it typically forces much more). *)
  List.iter
    (fun algo ->
      let cfg = Fan_lynch.default_config ~spec ~algo ~n:17 ~seed:6 () in
      let report = Fan_lynch.attack cfg in
      Alcotest.(check bool)
        (Algorithm.kind_name algo ^ " above theorem line")
        true
        (report.Fan_lynch.forced_local >= report.Fan_lynch.lower_bound))
    Algorithm.all_kinds

let test_fan_lynch_gradient_stays_under_envelope () =
  (* Even under attack, the gradient algorithm must respect its analytic
     local-skew envelope — the attack shows tightness, not violation. *)
  let cfg =
    Fan_lynch.default_config ~spec ~algo:Algorithm.Gradient_sync ~n:17 ~seed:6 ()
  in
  let report = Fan_lynch.attack cfg in
  let envelope = Bounds.gradient_local_upper spec ~diameter:16 in
  Alcotest.(check bool) "under envelope" true
    (report.Fan_lynch.forced_local <= envelope)

let test_fan_lynch_runs_all_phases () =
  let cfg = Fan_lynch.default_config ~spec ~n:33 ~seed:1 () in
  let report = Fan_lynch.attack cfg in
  Alcotest.(check bool) "multiple phases" true (report.Fan_lynch.phases >= 2)

let test_fan_lynch_deterministic () =
  let attack () =
    let cfg = Fan_lynch.default_config ~spec ~n:17 ~seed:8 () in
    (Fan_lynch.attack cfg).Fan_lynch.forced_local
  in
  Alcotest.(check (float 0.)) "replayable" (attack ()) (attack ())

let test_linear_forces_global () =
  List.iter
    (fun algo ->
      let report = Linear.attack ~spec ~algo ~n:17 ~seed:2 () in
      Alcotest.(check bool)
        (Algorithm.kind_name algo ^ " forced >= u*D/4")
        true
        (report.Linear.forced_global >= report.Linear.lower_bound))
    [ Algorithm.Max_sync; Algorithm.Tree_sync; Algorithm.Gradient_sync ]

let test_bias_separates_tree_from_gradient () =
  (* The E3 separation on a ring: the consistent delay bias drives
     tree-based sync to a large skew across the cycle-closing edge while
     the gradient algorithm stays bounded. *)
  let n = 25 in
  let tree = Bias.attack_ring ~spec ~algo:Algorithm.Tree_sync ~n ~seed:3 () in
  let grad = Bias.attack_ring ~spec ~algo:Algorithm.Gradient_sync ~n ~seed:3 () in
  Alcotest.(check bool) "tree suffers" true
    (tree.Bias.forced_local > 2. *. grad.Bias.forced_local)

let test_bias_gradient_under_envelope () =
  let n = 25 in
  let grad = Bias.attack_ring ~spec ~algo:Algorithm.Gradient_sync ~n ~seed:3 () in
  let envelope = Bounds.gradient_local_upper spec ~diameter:(n / 2) in
  Alcotest.(check bool) "gradient bounded under bias" true
    (grad.Bias.forced_local <= envelope)

let test_bias_orientation () =
  Alcotest.(check bool) "cw" true (Bias.ring_orientation ~n:5 ~src:4 ~dst:0);
  Alcotest.(check bool) "ccw" false (Bias.ring_orientation ~n:5 ~src:0 ~dst:4)

let test_attacks_respect_delay_bounds () =
  (* The adversary can only choose delays inside the band; the engine
     asserts this on every send, so completing an attack run is itself the
     check. Verify the run also produced sane, finite metrics. *)
  let report = Linear.attack ~spec ~algo:Algorithm.Gradient_sync ~n:9 ~seed:4 () in
  Alcotest.(check bool) "finite metrics" true
    (Float.is_finite report.Linear.forced_global
    && Float.is_finite report.Linear.forced_local)

let suite =
  [
    Alcotest.test_case "fan-lynch defaults" `Quick test_fan_lynch_config_defaults;
    Alcotest.test_case "fan-lynch input validation" `Quick test_fan_lynch_rejects_bad_input;
    Alcotest.test_case "fan-lynch >= theorem" `Quick test_fan_lynch_forces_at_least_theorem_line;
    Alcotest.test_case "fan-lynch <= envelope" `Quick test_fan_lynch_gradient_stays_under_envelope;
    Alcotest.test_case "fan-lynch phases" `Quick test_fan_lynch_runs_all_phases;
    Alcotest.test_case "fan-lynch deterministic" `Quick test_fan_lynch_deterministic;
    Alcotest.test_case "linear forces global" `Quick test_linear_forces_global;
    Alcotest.test_case "bias separates tree/gradient" `Quick test_bias_separates_tree_from_gradient;
    Alcotest.test_case "bias gradient bounded" `Quick test_bias_gradient_under_envelope;
    Alcotest.test_case "bias orientation" `Quick test_bias_orientation;
    Alcotest.test_case "attacks respect bounds" `Quick test_attacks_respect_delay_bounds;
  ]
