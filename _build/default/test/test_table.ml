module Table = Gcs_util.Table

let test_render_alignment () =
  let out =
    Table.render
      ~columns:[ Table.column ~align:Table.Left "name"; Table.column "value" ]
      ~rows:[ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _rule :: row1 :: _ ->
      Alcotest.(check bool) "header contains name" true
        (String.length header > 0);
      Alcotest.(check bool) "left-aligned data" true
        (String.sub row1 2 1 = "a")
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check bool) "right-aligns numbers" true
    (String.length out > 0)

let test_rows_padded_and_truncated () =
  let out =
    Table.render
      ~columns:[ Table.column "a"; Table.column "b" ]
      ~rows:[ [ "1" ]; [ "1"; "2"; "3" ] ]
  in
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool) "no third column leaks" true
          (not (String.contains line '3')))
    (String.split_on_char '\n' out)

let test_fmt_float () =
  Alcotest.(check string) "default digits" "1.500" (Table.fmt_float 1.5);
  Alcotest.(check string) "digits" "1.50" (Table.fmt_float ~digits:2 1.5);
  Alcotest.(check string) "nan dash" "-" (Table.fmt_float nan)

let test_column_widths () =
  let out =
    Table.render
      ~columns:[ Table.column "x" ]
      ~rows:[ [ "wide-cell" ] ]
  in
  (* Every line must be at least as wide as the widest cell plus margin. *)
  List.iter
    (fun line ->
      if line <> "" then
        Alcotest.(check bool) "width fits content" true
          (String.length line >= String.length "wide-cell"))
    (String.split_on_char '\n' out)

let suite =
  [
    Alcotest.test_case "render alignment" `Quick test_render_alignment;
    Alcotest.test_case "pad/truncate rows" `Quick test_rows_padded_and_truncated;
    Alcotest.test_case "fmt_float" `Quick test_fmt_float;
    Alcotest.test_case "column widths" `Quick test_column_widths;
  ]
