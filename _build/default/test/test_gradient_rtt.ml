module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Rtt = Gcs_core.Gradient_rtt
module Dm = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng
module Lc = Gcs_clock.Logical_clock

let run ?(spec = Spec.make ()) ?(delay_kind = Runner.Uniform_delays)
    ?(horizon = 300.) graph =
  Runner.run
    (Runner.config ~spec ~algo:Algorithm.Gradient_sync
       ~override:Rtt.algorithm ~delay_kind ~horizon ~seed:95 graph)

let test_basic_convergence () =
  let spec = Spec.make () in
  let r = run ~spec (Topology.ring 10) in
  Alcotest.(check bool) "bounded" true
    (r.Runner.summary.Metrics.max_local
    <= Gcs_core.Bounds.gradient_local_upper spec ~diameter:5)

let test_no_jumps () =
  let r = run (Topology.ring 8) in
  Alcotest.(check int) "slew only" 0 r.Runner.jumps.Lc.count

let test_double_message_cost () =
  (* Probes + replies: about twice the one-way beacon count. *)
  let one_way =
    Runner.run
      (Runner.config ~spec:(Spec.make ()) ~algo:Algorithm.Gradient_sync
         ~horizon:300. ~seed:95 (Topology.ring 8))
  in
  let two_way = run (Topology.ring 8) in
  let ratio =
    float_of_int two_way.Runner.messages /. float_of_int one_way.Runner.messages
  in
  Alcotest.(check bool)
    (Printf.sprintf "about 2x messages (%.2f)" ratio)
    true
    (ratio > 1.7 && ratio < 2.3)

let test_immune_to_unknown_mean_delay () =
  (* Edges whose mean delay is far from the assumed band midpoint: one-way
     estimation carries the calibration bias; two-way must not. Both get a
     jitter-scale kappa, which is sound only for two-way. *)
  let n = 16 in
  let graph = Topology.ring n in
  let rng = Prng.create ~seed:97 in
  let centers = Array.init n (fun _ -> Prng.uniform rng ~lo:0.5 ~hi:3.5) in
  let edge_bounds e =
    Dm.bounds ~d_min:(centers.(e) -. 0.05) ~d_max:(centers.(e) +. 0.05)
  in
  let kappa = Spec.default_kappa ~u:0.1 ~rho:0.01 ~beacon_period:1. +. 0.3 in
  let spec = Spec.make ~d_min:0.1 ~d_max:3.9 ~kappa () in
  let measure override =
    let r =
      Runner.run
        (Runner.config ~spec ~algo:Algorithm.Gradient_sync ?override
           ~delay_kind:(Runner.Per_edge_delays edge_bounds) ~horizon:500.
           ~seed:98 graph)
    in
    r.Runner.summary.Metrics.max_local
  in
  let one_way = measure None in
  let two_way = measure (Some Rtt.algorithm) in
  Alcotest.(check bool)
    (Printf.sprintf "self-calibrating (%.3f < %.3f)" two_way one_way)
    true
    (two_way < 0.8 *. one_way)

let test_stale_replies_discarded () =
  (* Large delays relative to the probe period force overlapping exchanges;
     the per-port freshness check must keep the run sane (no blow-up from
     acting on reordered data). *)
  let spec = Spec.make ~d_min:1.5 ~d_max:2.5 ~beacon_period:1. () in
  let r = run ~spec (Topology.line 6) in
  Alcotest.(check bool) "sane under overlap" true
    (r.Runner.summary.Metrics.max_local < 10.)

let suite =
  [
    Alcotest.test_case "convergence" `Quick test_basic_convergence;
    Alcotest.test_case "no jumps" `Quick test_no_jumps;
    Alcotest.test_case "message cost" `Quick test_double_message_cost;
    Alcotest.test_case "unknown mean delay" `Quick test_immune_to_unknown_mean_delay;
    Alcotest.test_case "stale replies" `Quick test_stale_replies_discarded;
  ]
