module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Shortest_path = Gcs_graph.Shortest_path
module Prng = Gcs_util.Prng

let test_line () =
  let g = Topology.line 5 in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g);
  Alcotest.(check int) "diameter" 4 (Shortest_path.diameter g);
  Alcotest.(check int) "endpoint degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "middle degree" 2 (Graph.degree g 2)

let test_single_node_line () =
  let g = Topology.line 1 in
  Alcotest.(check int) "n" 1 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.m g)

let test_ring () =
  let g = Topology.ring 6 in
  Alcotest.(check int) "m" 6 (Graph.m g);
  Alcotest.(check int) "diameter" 3 (Shortest_path.diameter g);
  for v = 0 to 5 do
    Alcotest.(check int) "regular" 2 (Graph.degree g v)
  done

let test_grid () =
  let g = Topology.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  (* edges: 3 * 3 horizontal rows + 2 * 4 vertical = 9 + 8 *)
  Alcotest.(check int) "m" 17 (Graph.m g);
  Alcotest.(check int) "diameter" 5 (Shortest_path.diameter g)

let test_torus () =
  let g = Topology.torus ~rows:4 ~cols:4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  for v = 0 to 15 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree g v)
  done;
  Alcotest.(check int) "diameter" 4 (Shortest_path.diameter g)

let test_complete () =
  let g = Topology.complete 6 in
  Alcotest.(check int) "m" 15 (Graph.m g);
  Alcotest.(check int) "diameter" 1 (Shortest_path.diameter g)

let test_star () =
  let g = Topology.star 7 in
  Alcotest.(check int) "m" 6 (Graph.m g);
  Alcotest.(check int) "center degree" 6 (Graph.degree g 0);
  Alcotest.(check int) "diameter" 2 (Shortest_path.diameter g)

let test_binary_tree () =
  let g = Topology.binary_tree ~depth:3 in
  Alcotest.(check int) "n" 15 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  Alcotest.(check int) "diameter" 6 (Shortest_path.diameter g)

let test_hypercube () =
  let g = Topology.hypercube ~dim:4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check int) "diameter" 4 (Shortest_path.diameter g)

let test_random_gnp_connected =
  QCheck.Test.make ~name:"gnp post-processing yields connected graphs"
    ~count:50
    QCheck.(pair (int_range 2 40) (float_range 0. 0.3))
    (fun (n, p) ->
      let rng = Prng.create ~seed:(n + int_of_float (p *. 1000.)) in
      Graph.is_connected (Topology.random_gnp ~n ~p ~rng))

let test_random_geometric_connected =
  QCheck.Test.make ~name:"geometric graphs are connected" ~count:30
    QCheck.(int_range 2 40)
    (fun n ->
      let rng = Prng.create ~seed:n in
      let g, pos = Topology.random_geometric ~n ~radius:0.2 ~rng in
      Graph.is_connected g && Array.length pos = n)

let test_spec_roundtrip () =
  let specs =
    [
      Topology.Line 8;
      Topology.Ring 9;
      Topology.Grid (3, 4);
      Topology.Torus (4, 5);
      Topology.Complete 5;
      Topology.Star 6;
      Topology.Binary_tree 3;
      Topology.Hypercube 3;
      Topology.Random_gnp (10, 0.25);
      Topology.Random_geometric (10, 0.3);
    ]
  in
  List.iter
    (fun spec ->
      let name = Topology.spec_name spec in
      match Topology.spec_of_string name with
      | Ok parsed ->
          Alcotest.(check string) ("roundtrip " ^ name) name
            (Topology.spec_name parsed)
      | Error e -> Alcotest.fail e)
    specs

let test_spec_rejects_garbage () =
  List.iter
    (fun s ->
      match Topology.spec_of_string s with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ s)
      | Error _ -> ())
    [ "nope"; "line"; "line:x"; "grid:3"; "gnp:10"; "" ]

let test_build_matches_direct () =
  let rng = Prng.create ~seed:1 in
  let g = Topology.build (Topology.Ring 7) ~rng in
  Alcotest.(check int) "build ring" 7 (Graph.n g)

let suite =
  [
    Alcotest.test_case "line" `Quick test_line;
    Alcotest.test_case "line n=1" `Quick test_single_node_line;
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "torus" `Quick test_torus;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "star" `Quick test_star;
    Alcotest.test_case "binary tree" `Quick test_binary_tree;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec rejects garbage" `Quick test_spec_rejects_garbage;
    Alcotest.test_case "build" `Quick test_build_matches_direct;
    QCheck_alcotest.to_alcotest test_random_gnp_connected;
    QCheck_alcotest.to_alcotest test_random_geometric_connected;
  ]
