module Spec = Gcs_core.Spec
module Dm = Gcs_sim.Delay_model

let test_defaults () =
  let s = Spec.make () in
  Alcotest.(check (float 1e-12)) "u" 1. (Spec.uncertainty s);
  Alcotest.(check (float 1e-12)) "vartheta" 1.01 (Spec.vartheta s);
  Alcotest.(check (float 1e-12)) "sigma" 10. (Spec.sigma s);
  Alcotest.(check bool) "kappa positive" true (s.Spec.kappa > 0.)

let test_kappa_dominates_estimate_error () =
  let s = Spec.make () in
  Alcotest.(check bool) "kappa >= 4 * estimate error" true
    (s.Spec.kappa >= 4. *. Spec.estimate_error_bound s -. 1e-9)

let test_sigma_infinite_when_perfect () =
  let s = Spec.make ~rho:0. () in
  Alcotest.(check bool) "infinite sigma" true (Float.is_integer (Spec.sigma s) = false || Spec.sigma s = infinity);
  Alcotest.(check (float 0.)) "sigma" infinity (Spec.sigma s)

let test_zero_uncertainty_kappa_positive () =
  let s = Spec.make ~rho:0. ~d_min:1. ~d_max:1. () in
  Alcotest.(check bool) "kappa still positive" true (s.Spec.kappa > 0.)

let test_validation_failures () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : Spec.t) -> Alcotest.fail "accepted invalid spec"
  in
  expect_invalid (fun () -> Spec.make ~mu:0. ());
  expect_invalid (fun () -> Spec.make ~rho:0.2 ~mu:0.1 ());
  expect_invalid (fun () -> Spec.make ~beacon_period:0. ());
  expect_invalid (fun () -> Spec.make ~kappa:(-1.) ());
  expect_invalid (fun () -> Spec.make ~d_min:2. ~d_max:1. ())

let test_validate_ok () =
  match Spec.validate (Spec.make ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_estimate_error_grows_with_u () =
  let narrow = Spec.make ~d_min:1. ~d_max:1.2 () in
  let wide = Spec.make ~d_min:0.2 ~d_max:2. () in
  Alcotest.(check bool) "wider band, bigger error" true
    (Spec.estimate_error_bound wide > Spec.estimate_error_bound narrow)

let test_explicit_kappa_respected () =
  let s = Spec.make ~kappa:3.5 () in
  Alcotest.(check (float 1e-12)) "kappa" 3.5 s.Spec.kappa

let test_staleness_default_and_validation () =
  let s = Spec.make ~beacon_period:2. () in
  Alcotest.(check (float 1e-12)) "4 periods" 8. s.Spec.staleness_limit;
  let custom = Spec.make ~staleness_limit:3.5 () in
  Alcotest.(check (float 1e-12)) "explicit" 3.5 custom.Spec.staleness_limit;
  match Spec.make ~staleness_limit:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero staleness"

let test_delay_bounds_stored () =
  let s = Spec.make ~d_min:0.25 ~d_max:0.75 () in
  Alcotest.(check (float 1e-12)) "d_min" 0.25 s.Spec.delay.Dm.d_min;
  Alcotest.(check (float 1e-12)) "d_max" 0.75 s.Spec.delay.Dm.d_max

let suite =
  [
    Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "kappa dominates error" `Quick test_kappa_dominates_estimate_error;
    Alcotest.test_case "sigma infinite" `Quick test_sigma_infinite_when_perfect;
    Alcotest.test_case "zero-u kappa" `Quick test_zero_uncertainty_kappa_positive;
    Alcotest.test_case "validation failures" `Quick test_validation_failures;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "error grows with u" `Quick test_estimate_error_grows_with_u;
    Alcotest.test_case "explicit kappa" `Quick test_explicit_kappa_respected;
    Alcotest.test_case "delay bounds stored" `Quick test_delay_bounds_stored;
    Alcotest.test_case "staleness limit" `Quick test_staleness_default_and_validation;
  ]
