module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module External_sync = Gcs_core.External_sync

let spec = Spec.make ()

let max_realtime_skew ?(after = 0.) (r : Runner.result) =
  Array.fold_left
    (fun acc (s : Metrics.sample) ->
      if s.Metrics.time >= after then
        Float.max acc
          (Metrics.real_time_skew ~time:s.Metrics.time s.Metrics.values)
      else acc)
    0. r.Runner.samples

let run ?(graph = Topology.line 17) ?(horizon = 800.) anchors =
  let algo = External_sync.algorithm ~anchors in
  Runner.run
    (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:algo ~horizon
       ~seed:27 graph)

let test_reference_query () =
  let r = External_sync.perfect_reference in
  Alcotest.(check (float 1e-12)) "perfect" 42. (External_sync.query r ~now:42.);
  let noisy =
    External_sync.noisy_reference ~bias:0.5 ~wander:0.2 ~period:100. ~phase:0.
  in
  (* At t = 0 the sine term is 0: error is exactly the bias. *)
  Alcotest.(check (float 1e-12)) "bias at phase 0" 0.5
    (External_sync.query noisy ~now:0.);
  (* Error always within bias +/- wander. *)
  for i = 0 to 100 do
    let t = float_of_int i *. 7.3 in
    let err = External_sync.query noisy ~now:t -. t in
    Alcotest.(check bool) "bounded error" true
      (err >= 0.3 -. 1e-9 && err <= 0.7 +. 1e-9)
  done

let test_noisy_reference_validation () =
  match External_sync.noisy_reference ~bias:0. ~wander:0.1 ~period:0. ~phase:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero period"

let test_all_anchored_tracks_real_time () =
  let r = run (fun _ -> Some External_sync.perfect_reference) in
  let rt = max_realtime_skew ~after:200. r in
  Alcotest.(check bool) "tight real-time tracking" true
    (rt < 3. *. spec.Spec.kappa)

let test_single_anchor_bounds_real_time () =
  (* With one anchor the real-time skew is bounded by roughly the global
     skew envelope; without anchors it grows with mu/2 * horizon. *)
  let anchored = run ~horizon:3000. (fun v -> if v = 0 then Some External_sync.perfect_reference else None) in
  let unanchored = run ~horizon:3000. (fun _ -> None) in
  let rt_anchored = max_realtime_skew ~after:1500. anchored in
  let rt_unanchored = max_realtime_skew ~after:1500. unanchored in
  Alcotest.(check bool)
    (Printf.sprintf "anchored (%.1f) beats unanchored (%.1f)" rt_anchored
       rt_unanchored)
    true
    (rt_anchored < rt_unanchored /. 2.)

let test_more_anchors_tighter () =
  let horizon = 2000. in
  let one = run ~horizon (fun v -> if v = 0 then Some External_sync.perfect_reference else None) in
  let many = run ~horizon (fun v -> if v mod 4 = 0 then Some External_sync.perfect_reference else None) in
  let rt_one = max_realtime_skew ~after:1000. one in
  let rt_many = max_realtime_skew ~after:1000. many in
  Alcotest.(check bool)
    (Printf.sprintf "denser anchors tighter (%.2f < %.2f)" rt_many rt_one)
    true (rt_many < rt_one)

let test_local_skew_still_bounded () =
  let r = run (fun v -> if v = 0 then Some External_sync.perfect_reference else None) in
  Alcotest.(check bool) "internal sync preserved" true
    (r.Runner.summary.Metrics.max_local
    <= Gcs_core.Bounds.gradient_local_upper spec ~diameter:16)

let test_reference_bias_shows_up () =
  (* All nodes anchored to a reference with bias 1: the logical clocks must
     settle near t + 1, i.e. real-time skew close to the bias. *)
  let biased =
    External_sync.noisy_reference ~bias:1. ~wander:0. ~period:100. ~phase:0.
  in
  let r = run (fun _ -> Some biased) in
  let rt = max_realtime_skew ~after:400. r in
  Alcotest.(check bool) "skew about the bias" true (rt >= 0.5 && rt <= 2.)

let test_no_jumps () =
  let r = run (fun v -> if v = 0 then Some External_sync.perfect_reference else None) in
  Alcotest.(check int) "slew only" 0 r.Runner.jumps.Gcs_clock.Logical_clock.count

let suite =
  [
    Alcotest.test_case "reference query" `Quick test_reference_query;
    Alcotest.test_case "reference validation" `Quick test_noisy_reference_validation;
    Alcotest.test_case "all anchored" `Quick test_all_anchored_tracks_real_time;
    Alcotest.test_case "single anchor" `Quick test_single_anchor_bounds_real_time;
    Alcotest.test_case "anchor density" `Quick test_more_anchors_tighter;
    Alcotest.test_case "local skew bounded" `Quick test_local_skew_still_bounded;
    Alcotest.test_case "bias visible" `Quick test_reference_bias_shows_up;
    Alcotest.test_case "no jumps" `Quick test_no_jumps;
  ]
