module Mobility = Gcs_sim.Mobility
module Dm = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng

let make ?(n = 5) ?(speed = 0.1) ?(seed = 103) () =
  Mobility.random_waypoint ~n ~speed ~horizon:100. ~rng:(Prng.create ~seed)

let in_unit_square (x, y) = x >= 0. && x <= 1. && y >= 0. && y <= 1.

let test_positions_in_square =
  QCheck.Test.make ~name:"positions stay in the unit square" ~count:200
    QCheck.(pair (int_range 0 4) (float_range 0. 150.))
    (fun (node, now) ->
      let m = make () in
      in_unit_square (Mobility.position m ~node ~now))

let test_zero_speed_is_static () =
  let m = make ~speed:0. () in
  let p0 = Mobility.position m ~node:2 ~now:0. in
  let p1 = Mobility.position m ~node:2 ~now:50. in
  Alcotest.(check bool) "frozen" true (p0 = p1)

let test_motion_is_continuous () =
  (* Small time steps move the node by at most speed * dt (plus epsilon). *)
  let speed = 0.2 in
  let m = make ~speed () in
  let dt = 0.5 in
  let max_step = ref 0. in
  for i = 0 to 199 do
    let t = float_of_int i *. dt in
    let x0, y0 = Mobility.position m ~node:1 ~now:t in
    let x1, y1 = Mobility.position m ~node:1 ~now:(t +. dt) in
    max_step := Float.max !max_step (Float.hypot (x1 -. x0) (y1 -. y0))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "step %.4f <= speed*dt" !max_step)
    true
    (!max_step <= (speed *. dt) +. 1e-9)

let test_distance_symmetric () =
  let m = make () in
  Alcotest.(check (float 1e-12)) "symmetric"
    (Mobility.distance m ~a:0 ~b:3 ~now:10.)
    (Mobility.distance m ~a:3 ~b:0 ~now:10.)

let test_chooser_in_bounds =
  QCheck.Test.make ~name:"mobility delays stay in the band" ~count:200
    QCheck.(pair (int_range 0 3) (float_range 0. 120.))
    (fun (src, now) ->
      let m = make () in
      let bounds = Dm.bounds ~d_min:0.3 ~d_max:1.7 in
      let d =
        Mobility.delay_chooser m ~bounds ~edge:0 ~src ~dst:((src + 1) mod 5)
          ~now
      in
      d >= 0.3 && d <= 1.7)

let test_deterministic () =
  let run () =
    let m = make () in
    List.init 20 (fun i -> Mobility.position m ~node:0 ~now:(float_of_int i))
  in
  Alcotest.(check bool) "replayable" true (run () = run ())

let test_validation () =
  let rng = Prng.create ~seed:1 in
  (match Mobility.random_waypoint ~n:0 ~speed:1. ~horizon:10. ~rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted n=0");
  match Mobility.random_waypoint ~n:2 ~speed:(-1.) ~horizon:10. ~rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted negative speed"

let test_full_run_with_mobile_delays () =
  (* End-to-end: gradient on a geometric graph whose delays track motion. *)
  let rng = Prng.create ~seed:105 in
  let graph, _ = Gcs_graph.Topology.random_geometric ~n:20 ~radius:0.35 ~rng in
  let spec = Gcs_core.Spec.make () in
  let cfg =
    Gcs_core.Runner.config ~spec ~algo:Gcs_core.Algorithm.Gradient_sync
      ~delay_kind:Gcs_core.Runner.Controlled_delays ~horizon:300. ~seed:106
      graph
  in
  let live = Gcs_core.Runner.prepare cfg in
  let m =
    Mobility.random_waypoint ~n:20 ~speed:0.02 ~horizon:300.
      ~rng:(Prng.create ~seed:107)
  in
  live.Gcs_core.Runner.chooser :=
    Some (Mobility.delay_chooser m ~bounds:spec.Gcs_core.Spec.delay);
  let r = Gcs_core.Runner.complete live in
  Alcotest.(check bool) "bounded under motion" true
    (r.Gcs_core.Runner.summary.Gcs_core.Metrics.max_local < 10.)

let suite =
  [
    Alcotest.test_case "zero speed" `Quick test_zero_speed_is_static;
    Alcotest.test_case "continuity" `Quick test_motion_is_continuous;
    Alcotest.test_case "distance symmetric" `Quick test_distance_symmetric;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "mobile end-to-end" `Quick test_full_run_with_mobile_delays;
    QCheck_alcotest.to_alcotest test_positions_in_square;
    QCheck_alcotest.to_alcotest test_chooser_in_bounds;
  ]
